"""Macro-benchmark: sustained update traffic with automatic recompression.

Quantifies the PR-2 tentpole: under ``auto_recompress_factor``
maintenance, the cost profile of a long-lived document is dominated by
``GrammarRePair`` runs.  The historical path re-censused the whole
grammar every replacement round and wholesale-reset the structural index
afterwards; the incremental path builds one
``GrammarOccurrenceIndex`` per run -- seeded with only the rules dirtied
since the last recompression -- and re-censuses only the rules each
round touches.

The workload: an EXI-Weblog-like document, a mixed stream of
rename/insert/append/delete operations at random element indices, and
``auto_recompress_factor=2`` (recompress whenever the grammar doubles).
Both variants replay the *identical* operation sequence; the documents
they maintain are equal by construction, so the only difference is
maintenance cost.

Results are printed and written to ``BENCH_recompress.json`` at the repo
root as the machine-readable perf baseline for future PRs.

Run directly (``PYTHONPATH=src python benchmarks/bench_recompress.py``)
for the full scale -- 50k edges, 500 updates -- which asserts a >= 5x
reduction in rule-census volume (the full O(|rule|) rescans the
incremental index eliminates) plus material end-to-end wall-time wins;
``--smoke`` (the CI job) runs a tiny scale and asserts the JSON schema
plus that dirty-scoped recompression rescanned fewer rules than the
grammar has.  Like all ``bench_*`` modules it is collected by pytest
only via an explicit path.
"""

import json
import os
import random
import sys
import time

from repro.api import CompressedXml
from repro.obs.metrics import summarize_latencies
from repro.trees.unranked import XmlNode

FULL_SCALE = {"edges": 50_000, "updates": 500}
SMOKE_SCALE = {"edges": 2_000, "updates": 60}
AUTO_FACTOR = 2.0
SEED = 42
TAGS = ("ip", "user", "ts", "request", "status", "bytes", "extra")

JSON_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_recompress.json"
)


def make_doc(edges, incremental, seed=SEED):
    from repro.datasets.synthetic import make_corpus

    return CompressedXml.from_document(
        make_corpus("EXI-Weblog", edges=edges, seed=seed),
        auto_recompress_factor=AUTO_FACTOR,
        incremental_recompress=incremental,
    )


def make_ops(updates, seed=SEED):
    """The op stream as (kind, fraction, tag): fractions are mapped to a
    valid element index at application time, so the same stream applies
    to both variants (their element counts evolve identically)."""
    rng = random.Random(seed)
    kinds = ("rename", "rename", "rename", "insert", "insert",
             "append", "delete")
    return [
        (rng.choice(kinds), rng.random(), rng.choice(TAGS))
        for _ in range(updates)
    ]


def apply_op(doc, op):
    kind, fraction, tag = op
    count = doc.element_count
    if kind == "rename":
        doc.rename(1 + int(fraction * (count - 1)), tag)
    elif kind == "insert":
        doc.insert(1 + int(fraction * (count - 1)),
                   XmlNode("entry", [XmlNode(tag)]))
    elif kind == "append":
        doc.append_child(int(fraction * count), XmlNode(tag))
    elif kind == "delete" and count > 2:
        doc.delete(1 + int(fraction * (count - 1)))


def run_variant(edges, ops, incremental):
    doc = make_doc(edges, incremental)
    samples = []
    start = time.perf_counter()
    for op in ops:
        op_started = time.perf_counter()
        apply_op(doc, op)
        samples.append(time.perf_counter() - op_started)
    total_s = time.perf_counter() - start
    stats = doc.last_repair_stats
    result = {
        "mode": "incremental" if incremental else "full_rescan",
        "initial_c_edges": doc._last_compressed_size,
        "final_c_edges": doc.compressed_size,
        "element_count": doc.element_count,
        "total_s": round(total_s, 4),
        "ops_per_s": round(len(ops) / total_s, 2),
        "recompress_runs": doc.recompress_runs,
        "recompress_s": round(doc.recompress_seconds, 4),
        "maintenance_s": round(doc.maintenance_seconds, 4),
        "rules_censused": doc.rules_censused_total,
        "rules_adapted": doc.rules_adapted_total,
        "index_wholesale_resets": doc.index.wholesale_invalidations,
        "grammar_rules": len(doc.grammar),
        "latency": summarize_latencies(samples),
    }
    if stats is not None:
        result["last_run"] = {
            "rounds": stats.rounds,
            "full_censuses": stats.full_censuses,
            "seed_rule_count": stats.seed_rule_count,
            "census_trace": stats.census_trace,
            "rule_count_trace": stats.rule_count_trace,
        }
    if incremental:
        # One small update followed by an explicit recompress exercises
        # the dirty-rule-scoped census (the auto policy may have chosen
        # full seeding when the dirty mass dominated the grammar).
        doc.rename(1, "probe")
        doc.recompress()
        probe = doc.last_repair_stats
        result["scoped_probe"] = {
            "seed_rule_count": probe.seed_rule_count,
            "full_censuses": probe.full_censuses,
            "census_trace": probe.census_trace,
            "rule_count_trace": probe.rule_count_trace,
            "index_wholesale_resets": doc.index.wholesale_invalidations,
        }
    return doc, result


def run(edges, updates, smoke=False):
    ops = make_ops(updates)
    print(f"workload: EXI-Weblog {edges} edges, {updates} mixed updates, "
          f"auto_recompress_factor={AUTO_FACTOR}")
    doc_full, full = run_variant(edges, ops, incremental=False)
    print(f"  full rescan : {full['total_s']:8.2f}s total, "
          f"{full['recompress_s']:8.2f}s recompress "
          f"({full['maintenance_s']:.2f}s occurrence maintenance, "
          f"{full['recompress_runs']} runs), {full['final_c_edges']} c-edges")
    doc_inc, inc = run_variant(edges, ops, incremental=True)
    print(f"  incremental : {inc['total_s']:8.2f}s total, "
          f"{inc['recompress_s']:8.2f}s recompress "
          f"({inc['maintenance_s']:.2f}s occurrence maintenance, "
          f"{inc['recompress_runs']} runs), {inc['final_c_edges']} c-edges")

    # Same op stream, same document: divergence would mean a bug.
    assert doc_full.element_count == doc_inc.element_count, \
        "variants maintained different documents"

    recompress_speedup = (
        full["recompress_s"] / inc["recompress_s"]
        if inc["recompress_s"] else float("inf")
    )
    maintenance_speedup = (
        full["maintenance_s"] / inc["maintenance_s"]
        if inc["maintenance_s"] else float("inf")
    )
    census_speedup = (
        full["rules_censused"] / inc["rules_censused"]
        if inc["rules_censused"] else float("inf")
    )
    ops_speedup = (
        inc["ops_per_s"] / full["ops_per_s"] if full["ops_per_s"] else 0.0
    )
    print(f"  speedup     : {census_speedup:.1f}x rule-census volume "
          f"(+{inc['rules_adapted']} rules adapted below census cost), "
          f"{maintenance_speedup:.1f}x occurrence maintenance wall time, "
          f"{recompress_speedup:.1f}x recompress wall time, "
          f"{ops_speedup:.1f}x sustained ops/s")

    report = {
        "benchmark": "bench_recompress",
        "workload": {
            "corpus": "EXI-Weblog",
            "edges": edges,
            "updates": updates,
            "auto_recompress_factor": AUTO_FACTOR,
            "seed": SEED,
            "smoke": smoke,
        },
        "full_rescan": full,
        "incremental": inc,
        "speedup": {
            # The quantity the PR eliminates: full O(|rule|) occurrence
            # rescans.  The pre-PR path re-censuses every rule every
            # round; the index censuses a rule only when a round rewrote
            # it non-locally.  (Rules brought up to date below census
            # cost -- event-log adaptation, crossing-only rescans -- are
            # reported as rules_adapted, not census volume.)
            "rule_census_volume": round(census_speedup, 2),
            # Wall-time views, reported unembellished: maintenance is the
            # census/selection/upkeep component; recompress and ops/s
            # additionally include the replacement + pruning machinery
            # that is identical on both paths.
            "occurrence_maintenance": round(maintenance_speedup, 2),
            "recompress_wall_time": round(recompress_speedup, 2),
            "ops_per_s": round(ops_speedup, 2),
        },
    }
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.normpath(JSON_PATH)}")
    return report


def check_schema(report):
    """The machine-readable contract future PRs regress against."""
    for section in ("workload", "full_rescan", "incremental", "speedup"):
        assert section in report, f"missing section {section!r}"
    for key in ("total_s", "ops_per_s", "recompress_runs", "recompress_s",
                "maintenance_s", "rules_censused", "final_c_edges",
                "grammar_rules", "latency"):
        assert key in report["full_rescan"], f"missing {key!r}"
        assert key in report["incremental"], f"missing {key!r}"
    for variant in ("full_rescan", "incremental"):
        for key in ("count", "p50_ms", "p95_ms", "p99_ms"):
            assert key in report[variant]["latency"], \
                f"{variant}: missing latency {key!r}"
        assert report[variant]["latency"]["count"] > 0
    for key in ("rule_census_volume", "occurrence_maintenance",
                "recompress_wall_time", "ops_per_s"):
        assert key in report["speedup"], f"missing speedup {key!r}"


def check_scoping(report):
    """Dirty-scoped recompression rescans fewer rules than the grammar."""
    probe = report["incremental"].get("scoped_probe")
    assert probe is not None, "incremental variant recorded no scoped probe"
    assert probe["full_censuses"] == 0, "dirty-scoped run did a full census"
    assert probe["seed_rule_count"] is not None
    trace = list(zip(probe["census_trace"], probe["rule_count_trace"]))
    assert trace, "no census recorded"
    assert all(censused < total for censused, total in trace), (
        f"a census scanned the whole grammar: {trace}"
    )
    assert probe["index_wholesale_resets"] == 0
    # The whole incremental run -- not just the probe -- must maintain
    # the structural index per rule, never reset it wholesale.
    assert report["incremental"]["index_wholesale_resets"] == 0, \
        "the incremental variant wholesale-reset the structural index"


def check_speedup(report, minimum=5.0):
    """The acceptance bound: >= 5x on the full-rescan volume the
    incremental index replaces (the pre-PR path re-censuses every rule
    every round).  Wall-time gains are smaller -- Python-level per-round
    upkeep plus the replacement and pruning machinery shared by both
    paths bound them around 2x on this workload -- and are recorded
    alongside, with a sanity floor so the volume win must translate into
    real time won."""
    speedup = report["speedup"]["rule_census_volume"]
    assert speedup >= minimum, (
        f"incremental recompression only cut rule-census volume "
        f"{speedup:.1f}x (required >= {minimum}x)"
    )
    assert report["speedup"]["recompress_wall_time"] > 1.5, (
        "incremental recompression must be materially faster end-to-end"
    )
    assert report["speedup"]["ops_per_s"] > 1.0, (
        "sustained update throughput must improve"
    )


def test_recompress_smoke():
    """Entry point at a CI-friendly scale (explicit-path pytest runs)."""
    report = run(smoke=True, **SMOKE_SCALE)
    check_schema(report)
    check_scoping(report)


if __name__ == "__main__":
    try:
        from benchmarks._common import maybe_profile
    except ImportError:  # run directly: benchmarks/ itself is sys.path[0]
        from _common import maybe_profile

    smoke = "--smoke" in sys.argv
    scale = SMOKE_SCALE if smoke else FULL_SCALE
    with maybe_profile("bench_recompress"):
        report = run(smoke=smoke, **scale)
    check_schema(report)
    check_scoping(report)
    if not smoke:
        check_speedup(report)
        print("bounds ok: >=5x rule-census volume reduction, material "
              "wall-time wins, dirty-scoped censuses smaller than the "
              "grammar")
    else:
        print("smoke ok: schema valid, dirty-scoped censuses smaller than "
              "the grammar")
