"""Figure 6: recompression runtime, GrammarRePair vs udc."""

from repro.experiments import figure6

from benchmarks.conftest import BENCH_SCALES


def test_recompression_vs_udc(benchmark):
    result = benchmark.pedantic(
        lambda: figure6.run(
            corpora=figure6.DEFAULT_CORPORA,
            n_renames=60,
            scales=BENCH_SCALES,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    by_name = {row[0]: row for row in result.rows}
    # Paper shape: on the strongly compressing (large-val) files,
    # GrammarRePair beats the full udc pipeline.
    wins = [
        name for name, row in by_name.items()
        if row[2] < 1.0
    ]
    assert any(name in wins for name in ("EXI-Weblog", "EXI-Telecomp", "NCBI")), (
        "GrammarRePair should beat udc on at least one extreme corpus",
        {name: row[2] for name, row in by_name.items()},
    )
    # Space claim (Section V-C): far below udc on average.
    space = [row[5] for row in result.rows]
    assert sum(space) / len(space) < 60.0  # percent of udc's tree

if __name__ == "__main__":
    # Profiling entry point; the shape assertions live in the pytest
    # path above.  Run from the repo root:
    #   PYTHONPATH=src python -m benchmarks.bench_figure6 [--profile]
    from benchmarks._common import maybe_profile

    with maybe_profile("bench_figure6"):
        result = figure6.run(corpora=figure6.DEFAULT_CORPORA, n_renames=60,
                         scales=BENCH_SCALES, seed=0)
    print(result.render())
