from setuptools import setup

# Shim for environments without the `wheel` package (legacy editable install).
setup()
