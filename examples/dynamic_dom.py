"""A dynamic DOM under a long update stream -- the paper's motivation.

Browsers keep DOM trees in memory; they are large and change constantly.
This example maintains a grammar-compressed DOM under a random
insert/delete/rename stream and compares three maintenance policies:

* **naive** -- apply updates, never recompress (compression degrades),
* **auto**  -- recompress when the grammar grows 1.5x (CompressedXml's
  built-in policy; the paper's incremental approach),
* **udc**   -- decompress + compress from scratch at the same moments
  (the best previously known method, for reference).

Run with::

    python examples/dynamic_dom.py
"""

import random
import time

from repro import CompressedXml, TreeRePair
from repro.trees.symbols import Alphabet
from repro.trees.binary import encode_binary
from repro.trees.unranked import XmlNode
from repro.trees.xml_io import parse_xml


def build_page(sections: int = 120) -> str:
    """A plausible page: repeated widgets with a sprinkle of variation."""
    parts = ["<html><head><meta/><meta/></head><body>"]
    for index in range(sections):
        extra = "<badge/>" if index % 7 == 0 else ""
        parts.append(
            "<section><h2/><p/><p/>"
            f"<widget><icon/>{extra}<label/></widget></section>"
        )
    parts.append("</body></html>")
    return "".join(parts)


def random_update(doc: CompressedXml, rng: random.Random, step: int) -> None:
    n = doc.element_count
    kind = rng.random()
    if kind < 0.5:
        doc.rename(rng.randrange(1, n), f"w{step % 13}")
    elif kind < 0.8:
        doc.insert(rng.randrange(1, n), XmlNode("span", [XmlNode("text")]))
    else:
        doc.delete(rng.randrange(2, n))


def main() -> None:
    page = build_page()
    naive = CompressedXml.from_xml(page)
    auto = CompressedXml.from_xml(page, auto_recompress_factor=1.5)
    baseline = naive.compressed_size
    print(f"page: {naive.element_count} elements, grammar {baseline} edges")

    rng_naive, rng_auto = random.Random(42), random.Random(42)
    started = time.perf_counter()
    steps = 120
    for step in range(steps):
        random_update(naive, rng_naive, step)
        random_update(auto, rng_auto, step)
        if (step + 1) % 30 == 0:
            print(
                f"after {step + 1:3d} updates: naive {naive.compressed_size:5d} "
                f"edges, auto {auto.compressed_size:5d} edges"
            )
    elapsed = time.perf_counter() - started

    # The udc reference: decompress the final document, compress fresh.
    document = parse_xml(auto.to_xml())
    alphabet = Alphabet()
    scratch = TreeRePair().compress(
        encode_binary(document, alphabet), alphabet, copy_input=False
    )
    print(f"\n{steps} updates on two documents took {elapsed:.2f}s")
    print(f"from-scratch grammar:      {scratch.size} edges")
    print(f"incrementally maintained:  {auto.compressed_size} edges "
          f"({auto.compressed_size / scratch.size:.2f}x of scratch)")
    print(f"never recompressed:        {naive.compressed_size} edges "
          f"({naive.compressed_size / scratch.size:.2f}x of scratch)")
    assert auto.compressed_size <= naive.compressed_size


if __name__ == "__main__":
    main()
