"""Append-heavy weblog: keeping an exponentially compressed log updatable.

EXI-Weblog is the paper's most compressible corpus: a long list of
identical records that an SLCF grammar stores in logarithmic space.  This
example simulates a live log: events are appended continuously (inserts at
the end of the child list, i.e. on a null pointer -- Section V-C), and
occasionally an old entry is redacted (deleted).  Naive appends break the
doubling hierarchy apart; periodic GrammarRePair runs restore it.

Run with::

    python examples/weblog_stream.py
"""

from repro import CompressedXml
from repro.trees.unranked import XmlNode


def log_event(kind: str = "entry") -> XmlNode:
    return XmlNode(kind, [
        XmlNode("ip"), XmlNode("user"), XmlNode("ts"),
        XmlNode("request"), XmlNode("status"), XmlNode("bytes"),
    ])


def main() -> None:
    base = "<log>" + "<entry><ip/><user/><ts/><request/><status/><bytes/></entry>" * 256 + "</log>"
    doc = CompressedXml.from_xml(base)
    print(f"seed log: {doc.element_count} elements in "
          f"{doc.compressed_size} grammar edges "
          f"(ratio {100 * doc.compression_ratio:.3f}%)")

    appended = 0
    redacted = 0
    history = []
    for step in range(90):
        doc.append_child(0, log_event())
        appended += 1
        if step % 30 == 29:
            # Redact the oldest surviving entry (element 1).
            doc.delete(1)
            redacted += 1
        history.append(doc.compressed_size)
        if step % 30 == 14:
            before = doc.compressed_size
            doc.recompress()
            print(f"step {step + 1:3d}: recompressed {before} -> "
                  f"{doc.compressed_size} edges")

    final_naive_size = history[-1]
    doc.recompress()
    print(f"\nappended {appended} events, redacted {redacted}")
    print(f"grammar before final recompression: {final_naive_size} edges")
    print(f"grammar after final recompression:  {doc.compressed_size} edges")
    print(f"elements now: {doc.element_count}")

    # The log stays exponentially compressed through all of it.
    assert doc.compression_ratio < 0.1
    # And the content is intact and well-formed.
    xml = doc.to_xml()
    assert xml.count("<entry>") == 256 + appended - redacted
    print("log verified OK")


if __name__ == "__main__":
    main()
