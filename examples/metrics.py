"""Observability quickstart: per-document metrics, p99s, and a scrape.

One registry per document (or the process-global default) collects
latency histograms, counters, and live gauge sources from every hot
path.  This walkthrough drives a mixed workload -- single ops, an
atomic batch, queries, an explicit recompression -- then reads the
results three ways:

* the in-process summary (``doc.metrics()``) with p50/p95/p99 per
  histogram family, the same block ``DurableXml.health()`` embeds;
* the human-readable table (``registry.render_table()``), what
  ``repro-xml durable metrics store/`` prints;
* the Prometheus text exposition (``registry.render_prometheus()``),
  what ``durable metrics store/ --prometheus`` serves to a scraper.

It also arms the tracer's slow-op threshold so the recompression shows
up as one structured log line with its stage breakdown -- the "why was
that slow" breadcrumb (see the runbook table in the README).

Run with ``PYTHONPATH=src python examples/metrics.py``.
"""

import logging

from repro import CompressedXml
from repro.obs import MetricsRegistry, Tracer, set_default_tracer
from repro.trees.unranked import XmlNode


def build_log(entries: int = 1500) -> str:
    parts = ["<log>"]
    for index in range(entries):
        extra = "<ref/>" if index % 5 == 0 else ""
        parts.append(f"<entry><ip/><ts/><req>{extra}</req></entry>")
    parts.append("</log>")
    return "".join(parts)


def main() -> None:
    # Slow-op tracing: any root span over 5ms logs one line with its
    # per-stage breakdown through stdlib logging.
    logging.basicConfig(format="%(name)s: %(message)s")
    set_default_tracer(Tracer(slow_op_seconds=0.005))

    registry = MetricsRegistry()
    doc = CompressedXml.from_xml(
        build_log(), metrics=registry, shard_width=64
    )
    print(f"log: {doc.element_count} elements, "
          f"grammar {doc.compressed_size} edges\n")

    # -- the mixed load ------------------------------------------------
    for index in range(40):
        doc.rename(2 + index * 7, "seen")
    with doc.batch() as burst:
        burst.rename(5, "flagged")
        burst.insert(9, XmlNode("note", [XmlNode("by")]))
        burst.append_child(0, XmlNode("tail"))
    hits = doc.select("//seen")
    total = doc.count("//ip")
    doc.recompress()
    print(f"applied 40 renames + 1 batch; //seen -> {len(hits)} hits, "
          f"//ip -> {total}\n")

    # -- 1. in-process percentiles: the p99 view -----------------------
    # doc.metrics() is the compact count+p50/p99 summary health() embeds;
    # collect() has the full snapshot (p95, min/max/mean) in seconds.
    collected = registry.collect()
    print("update/query p50..p99 (ms):")
    for family in ("repro_update_seconds{op=\"rename\"}",
                   "repro_batch_seconds",
                   "repro_query_stage_seconds{stage=\"walk\"}",
                   "repro_recompress_seconds"):
        snap = collected["histograms"][family]
        print(f"  {family:48s} n={snap['count']:<4d} "
              f"p50={snap['p50_s'] * 1e3:7.3f}  "
              f"p95={snap['p95_s'] * 1e3:7.3f}  "
              f"p99={snap['p99_s'] * 1e3:7.3f}")

    # -- 2. the operator table (what `durable metrics` prints) ---------
    print("\n--- render_table() (excerpt) ---")
    table = registry.render_table()
    for line in table.splitlines():
        if "recompress" in line or line.startswith(("counters", "gauges")):
            print(line)

    # -- 3. the scrape (what `durable metrics --prometheus` serves) ----
    print("\n--- render_prometheus() (excerpt) ---")
    exposition = registry.render_prometheus()
    for line in exposition.splitlines():
        if line.startswith(("# TYPE repro_update_seconds",
                            "repro_update_seconds_count",
                            "repro_queries_total",
                            "repro_doc_element_count")):
            print(line)
    print(f"... {len(exposition.splitlines())} lines, "
          f"{len(exposition)} bytes total")


if __name__ == "__main__":
    main()
