"""Surviving a bad disk -- retries, read-only degradation, and scrub.

The durable store never lets an I/O error corrupt state or escape as a
raw ``OSError``.  The failure ladder:

* a *transient* write error (flaky controller, momentary ENOSPC) is
  retried with capped exponential backoff -- if it clears within the
  budget, the commit succeeds and the caller never knows;
* a *persistent* one flips the store **read-only**: every write raises
  a typed ``StoreDegraded`` naming the cause while queries keep serving
  the last acknowledged state;
* once the disk is healthy again, one successful ``checkpoint()``
  re-seals the store and restores writes;
* damage that happens *behind the store's back* -- bit rot in a
  fallback snapshot or a compacted log -- is caught by the online
  ``scrub()``, and ``scrub(repair=True)`` heals it in place.

This example injects real errnos through the same fault layer the CI
error-injection matrix uses, so everything below is the production
code path.

Run with::

    python examples/degraded_mode.py
"""

import errno
import os
import tempfile

from repro.storage import (
    DurableXml,
    FaultyIO,
    RetryPolicy,
    StoreDegraded,
)

WEBLOG = (
    "<log>"
    + "".join("<entry><ip/><ts/><request/><status/></entry>"
              for _ in range(50))
    + "</log>"
)


def main() -> None:
    root = tempfile.mkdtemp(prefix="repro_degraded_")
    store_dir = os.path.join(root, "weblog")

    # A deterministic, sleep-free retry budget for the demo (the
    # default policy backs off 5ms -> 20ms -> 80ms -> capped 250ms).
    retry = RetryPolicy(attempts=3, base_delay=0.005, max_delay=0.02,
                        sleep=lambda _s: None)

    # -- a flaky disk: one transient EIO, absorbed by the retry loop --
    flaky = FaultyIO(error_label="wal:append:before-write",
                     error_count=1, error_errno=errno.EIO)
    flaky.disarm()
    store = DurableXml.from_xml(store_dir, WEBLOG, io=flaky, retry=retry)
    flaky.arm()
    store.rename(1, "first")          # hits EIO once, retries, commits
    print(f"transient EIO: commit succeeded anyway "
          f"(injected {len(flaky.errors_injected)} error(s), "
          f"store healthy: degraded={store.degraded})")

    # -- the disk fills up: persistent ENOSPC -------------------------
    store.close()
    full_disk = FaultyIO(error_label="wal:append:before-write",
                         error_persistent=True,
                         error_errno=errno.ENOSPC)
    full_disk.disarm()
    store = DurableXml.open(store_dir, io=full_disk, retry=retry)
    full_disk.arm()
    try:
        store.rename(2, "second")
    except StoreDegraded as exc:
        print(f"persistent ENOSPC: {exc}")
    print(f"  reads still serve: {len(store.select('//status'))} "
          f"status elements, element_count={store.element_count}")
    try:
        store.delete(3)
    except StoreDegraded:
        print("  every further write refused with the same typed error")
    health = store.health()
    print(f"  health(): degraded={health['degraded']}, "
          f"cause={health['degraded_cause']!r}")

    # -- the operator frees space: one checkpoint restores writes -----
    full_disk.disarm()
    generation = store.checkpoint()
    store.rename(2, "second")         # accepted again
    print(f"disk fixed: checkpoint -> generation {generation}, "
          f"degraded={store.degraded}, writes accepted again")

    # -- bit rot in the compacted fallback log ------------------------
    compacted = os.path.join(store_dir, "wal.000000.compact")
    with open(compacted, "r+b") as handle:
        handle.seek(20)
        byte = handle.read(1)
        handle.seek(20)
        handle.write(bytes([byte[0] ^ 0xFF]))
    report = store.scrub()
    finding = report.findings[0]
    print(f"scrub: found [{finding.kind}] in "
          f"{os.path.basename(finding.subject)}")
    report = store.scrub(repair=True)
    print(f"  repair: {report.repaired_count} finding(s) healed, "
          f"corrupt file retired={not os.path.exists(compacted)}")
    print(f"  re-scrub clean: {store.scrub().ok}")
    store.close()


if __name__ == "__main__":
    main()
