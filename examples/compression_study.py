"""Compression study: DAG vs TreeRePair vs GrammarRePair on six corpora.

Reproduces the spirit of Table III / Section V-B on synthetic analogs of
the paper's datasets, at a scale chosen for a quick interactive run.

Run with::

    python examples/compression_study.py [edge_budget]
"""

import sys
import time

from repro import GrammarRePair, TreeRePair
from repro.dag import dag_statistics, dag_to_grammar
from repro.datasets import CORPORA
from repro.experiments.common import format_table
from repro.trees.binary import encode_binary
from repro.trees.node import deep_copy
from repro.trees.stats import document_stats
from repro.trees.symbols import Alphabet


def main(edge_budget: int = 2500) -> None:
    rows = []
    for name, spec in CORPORA.items():
        doc = spec.generate(edge_budget, seed=7)
        stats = document_stats(doc)
        alphabet = Alphabet()
        binary = encode_binary(doc, alphabet)

        dag = dag_statistics(binary)
        dag_grammar = dag_to_grammar(binary, alphabet)

        started = time.perf_counter()
        tree_rp = TreeRePair().compress(deep_copy(binary), alphabet,
                                        copy_input=False)
        tr_seconds = time.perf_counter() - started

        started = time.perf_counter()
        gr = GrammarRePair().compress_tree(binary, alphabet)
        gr_seconds = time.perf_counter() - started

        rows.append([
            name,
            stats.edges,
            dag_grammar.size,
            tree_rp.size,
            gr.size,
            f"{100 * gr.size / stats.edges:.2f}%",
            f"{tr_seconds:.2f}/{gr_seconds:.2f}",
        ])

    print(format_table(
        f"Compression study ({edge_budget}-edge corpora)",
        ["dataset", "#edges", "DAG", "TreeRePair", "GrammarRePair",
         "GR ratio", "sec TR/GR"],
        rows,
        notes=[
            "DAG shares repeated subtrees (Buneman et al.); the RePair "
            "family shares repeated *patterns* and wins across the board",
        ],
    ))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2500)
