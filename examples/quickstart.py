"""Quickstart: compress, query, update, and restore an XML document.

Run with::

    python examples/quickstart.py
"""

from repro import CompressedXml
from repro.trees.unranked import XmlNode


def main() -> None:
    # A repetitive document -- the kind SLCF grammars excel at.
    xml = "<library>" + "<book><title/><author/><year/></book>" * 500 + "</library>"

    doc = CompressedXml.from_xml(xml)
    print(f"document:    {doc.element_count} elements, {doc.edge_count} edges")
    print(f"grammar:     {doc.compressed_size} edges "
          f"({100 * doc.compression_ratio:.2f}% of the document)")

    # Queries stream over the grammar; nothing is decompressed.
    tag_counts: dict = {}
    for tag in doc.tags():
        tag_counts[tag] = tag_counts.get(tag, 0) + 1
    print(f"tag census:  {tag_counts}")

    # Updates address elements by document order.  Each update isolates a
    # path (Section III-A of the paper) and edits only the start rule.
    doc.rename(1, "featured_book")           # the first <book>
    doc.insert(5, XmlNode("divider"))        # before the 2nd book
    doc.delete(10)                           # drop one book entirely
    print(f"after 3 updates: grammar grew to {doc.compressed_size} edges")

    # GrammarRePair recompresses *without* decompressing the document.
    doc.recompress()
    print(f"after recompression: {doc.compressed_size} edges")

    # Full fidelity: decompress back to XML whenever needed.
    restored = doc.to_xml()
    assert restored.startswith("<library><featured_book>")
    assert "<divider/>" in restored
    print("roundtrip OK:", len(restored), "characters of XML")


if __name__ == "__main__":
    main()
