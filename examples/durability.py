"""A crash-safe document store -- WAL, snapshots, and recovery.

``DurableXml`` wraps a compressed document in the classic WAL-first
commit protocol: every update is serialized as a logical operation
record, appended to the write-ahead log and fsync'd *before* it touches
the in-memory grammar.  When the log outgrows its threshold the store
checkpoints -- a crash-atomic binary snapshot (grammar + shard spine +
index state, so a reload never re-shards or re-censuses) plus a fresh
log generation.  Opening a store replays the WAL tail onto the newest
snapshot; a corrupt newest snapshot degrades to the previous generation
and replays both logs.

This example commits updates, "crashes" (drops the store object without
any shutdown), reopens, and shows the store recovering -- including a
torn tail record forged by a partial write.

Run with::

    python examples/durability.py
"""

import os
import tempfile

from repro import DurableXml
from repro.trees.unranked import XmlNode

WEBLOG = (
    "<log>"
    + "".join("<entry><ip/><ts/><request/><status/></entry>"
              for _ in range(200))
    + "</log>"
)


def listing(directory: str) -> str:
    return ", ".join(sorted(os.listdir(directory)))


def main() -> None:
    root = tempfile.mkdtemp(prefix="repro_store_")
    store_dir = os.path.join(root, "weblog")

    # -- day one: create the store and commit a few updates ------------
    store = DurableXml.from_xml(store_dir, WEBLOG)
    print(f"created {store_dir}")
    print(f"  layout: {listing(store_dir)}")

    store.rename(1, "first")
    store.append_child(0, XmlNode("trailer", [XmlNode("sum")]))
    with store.batch() as burst:          # ONE atomic WAL record
        burst.rename(2, "ipaddr").delete(7)
    print(f"  committed 3 records, WAL at {store.wal_size} bytes, "
          f"generation {store.generation}")
    live = store.to_xml()
    # ... and the process dies: no close(), no flush, nothing.
    del store

    # -- recovery: snapshot + WAL tail replay --------------------------
    with DurableXml.open(store_dir) as recovered:
        outcome = recovered.last_recovery
        print(f"reopened: replayed {outcome.replayed} record(s), "
              f"degraded={outcome.degraded}")
        assert recovered.to_xml() == live
        print(f"  {recovered.element_count} elements, "
              f"select('//status') -> "
              f"{len(recovered.select('//status'))} matches")
        recovered.checkpoint()
        generation = recovered.generation
        print(f"  checkpointed: generation {generation}, "
              f"layout: {listing(store_dir)}")

    # -- a torn tail: half a record hits the disk, then the kill -------
    wal_path = os.path.join(store_dir, f"wal.{generation:06d}")
    with open(wal_path, "ab") as handle:
        handle.write(b"\x40\x00\x00\x00partial-rec")   # torn frame
    with DurableXml.open(store_dir) as healed:
        truncated = healed.last_recovery.wal.truncated_tail
        print(f"torn tail: truncated={truncated}, "
              f"document intact={healed.to_xml() == live}")


if __name__ == "__main__":
    main()
