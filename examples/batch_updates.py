"""Batched updates on a live document -- bursts as one program.

Real update traffic arrives in bursts that hit nearby parts of the
document: a feed prepends a block of entries, a sweep relabels a section,
a purge drops a range.  Applied one at a time, every operation isolates
(and, after each automatic recompression, re-inlines) the same rule
prefix its neighbors need and re-dirties the structural index.
``CompressedXml.apply_batch`` -- or the ``with doc.batch()`` builder --
plans the burst first: indices are translated to one coordinate space
(each op still *means* what it would mean in a sequential loop), the
union of derivation paths is isolated in one pass sharing the common
prefixes, and the maintenance policy settles once at the end.

Run with::

    python examples/batch_updates.py
"""

import random
import time

from repro import CompressedXml
from repro.trees.unranked import XmlNode
from repro.updates.workload import generate_clustered_element_ops


def build_feed(entries: int = 3000) -> str:
    parts = ["<feed><meta/><title/>"]
    for index in range(entries):
        extra = "<gps/>" if index % 9 == 0 else ""
        parts.append(
            f"<entry><ts/><user/><request><path/>{extra}</request></entry>"
        )
    parts.append("</feed>")
    return "".join(parts)


def main() -> None:
    page = build_feed()
    sequential = CompressedXml.from_xml(page, auto_recompress_factor=2.0)
    batched = CompressedXml.from_xml(page, auto_recompress_factor=2.0)
    print(f"feed: {sequential.element_count} elements, "
          f"grammar {sequential.compressed_size} edges")

    # The explicit builder, for hand-written bursts.  Sequential
    # semantics: delete(4) addresses the document as the first two
    # operations leave it.
    with batched.batch() as burst:
        burst.rename(2, "headline")
        burst.insert(3, XmlNode("pinned", [XmlNode("ts"), XmlNode("user")]))
        burst.delete(8)
        burst.append_child(0, XmlNode("trailer"))
    sequential.rename(2, "headline")
    sequential.insert(3, XmlNode("pinned", [XmlNode("ts"), XmlNode("user")]))
    sequential.delete(8)
    sequential.append_child(0, XmlNode("trailer"))
    print(f"hand burst: {burst.stats.inlined_rules} rule inlines for "
          f"{burst.stats.operations} ops "
          f"({burst.stats.per_path_inlines} if isolated one by one)")

    # Generated clustered bursts, the benchmark workload, timed both ways.
    rng = random.Random(7)
    rounds, per_round = 6, 60
    seq_s = bat_s = 0.0
    for _ in range(rounds):
        ops = generate_clustered_element_ops(
            batched.element_count, per_round, rng=rng
        )
        started = time.perf_counter()
        for op in ops:
            kind = type(op).__name__
            if kind == "BatchRename":
                sequential.rename(op.index, op.new_tag)
            elif kind == "BatchInsert":
                sequential.insert(op.index, list(op.content))
            elif kind == "BatchAppend":
                sequential.append_child(op.parent_index, list(op.content))
            else:
                sequential.delete(op.index)
        seq_s += time.perf_counter() - started
        started = time.perf_counter()
        batched.apply_batch(ops)
        bat_s += time.perf_counter() - started

    assert batched.to_xml() == sequential.to_xml()
    print(f"\n{rounds * per_round} clustered ops, both documents equal:")
    print(f"sequential loop: {seq_s:.3f}s, "
          f"{sequential.rules_inlined_total} rule inlines, "
          f"{sequential.recompress_runs} recompressions")
    print(f"batched bursts:  {bat_s:.3f}s, "
          f"{batched.rules_inlined_total} rule inlines, "
          f"{batched.recompress_runs} recompressions "
          f"({seq_s / bat_s:.1f}x faster)")


if __name__ == "__main__":
    main()
