"""Query-then-update on a live compressed document -- no decompression.

The read side of the system: ``select`` evaluates a label path directly
on the grammar (child/descendant axes, wildcards, positional
predicates), returning document-order element indices -- the same
coordinate space every update takes.  The quickstart loop below is the
intended workflow: select the hits, batch-update them, select again.
``subtree_xml`` extracts one match's subtree by partial derivation, and
``count``/``tags``/``parent_of``/``children`` round out the navigation
API.  Throughout, the document is never decompressed.

Run with::

    python examples/query.py
"""

import time

from repro import CompressedXml


def build_log(entries: int = 5000) -> str:
    parts = ["<log>"]
    for index in range(entries):
        status = "<error/>" if index % 617 == 0 else "<status/>"
        parts.append(f"<entry><ip/><ts/><request/>{status}</entry>")
    parts.append("</log>")
    return "".join(parts)


def main() -> None:
    doc = CompressedXml.from_xml(build_log(), auto_recompress_factor=2.0)
    print(f"document: {doc.element_count} elements, "
          f"grammar {doc.compressed_size} edges")

    # -- select: label paths evaluated on the grammar ------------------
    started = time.perf_counter()
    errors = doc.select("//error")
    elapsed_ms = 1000 * (time.perf_counter() - started)
    print(f"select('//error'): {len(errors)} matches in {elapsed_ms:.2f} ms "
          f"(indices {errors[:4]}...)")
    print(f"count('/log/entry') = {doc.count('/log/entry')}")
    print(f"third entry's children: "
          f"{[doc.tag_of(i) for i in doc.children(doc.select('/log/entry[3]')[0])]}")

    # -- extract one hit's subtree by partial derivation ---------------
    parent = doc.parent_of(errors[0])
    print(f"first error sits at depth {doc.depth_of(errors[0])} "
          f"inside a <{doc.tag_of(parent)}>:")
    print(f"  {doc.subtree_xml(parent)}")

    # -- the quickstart loop: select -> batch-update the hits ----------
    with doc.batch() as batch:
        for index in errors:
            batch.rename(index, "error-seen")
    print(f"renamed {len(errors)} hits in one batch "
          f"({batch.stats.inlined_rules} rule inlines)")

    # -- select again: the indexes were maintained, not rebuilt -------
    print(f"select('//error') now: {doc.select('//error')}")
    print(f"select('//error-seen'): {len(doc.select('//error-seen'))} matches")
    census = doc.label_index
    print(f"label index: {census.wholesale_invalidations} wholesale "
          f"invalidations, {census.evicted_rules} per-rule evictions")


if __name__ == "__main__":
    main()
