"""Spine sharding: sustained tail appends with a bounded start rule.

Without a width budget, every update inlines into the one start rule, so
its right-hand side -- and the per-update isolation and index-recompute
work -- grows with the whole update history.  ``shard_width=W`` keeps the
accumulated mass in a balanced hierarchy of shard rules instead; this
walkthrough appends a few thousand varied log records to both variants
and prints the widths, shard statistics, and that the documents stay
byte-identical.

Run with ``PYTHONPATH=src python examples/sharded_spine.py``.
"""

import random

from repro.api import CompressedXml
from repro.trees.node import node_count
from repro.trees.unranked import XmlNode

TAGS = ("ip", "user", "ts", "req", "status", "bytes", "ref", "agent")


def record(rng):
    kids = [XmlNode(rng.choice(TAGS)) for _ in range(rng.randint(1, 4))]
    return XmlNode(rng.choice(("entry", "event")), kids)


def main():
    xml = "<log>" + "<entry><ip/><ts/></entry>" * 300 + "</log>"
    sharded = CompressedXml.from_xml(
        xml, auto_recompress_factor=2.0, shard_width=64
    )
    plain = CompressedXml.from_xml(xml, auto_recompress_factor=2.0)

    rng = random.Random(7)
    records = [record(rng) for _ in range(1500)]
    for r in records:
        sharded.append_child(0, r)
    rng = random.Random(7)
    for r in [record(rng) for _ in range(1500)]:
        plain.append_child(0, r)

    manager = sharded.shard_manager
    start_width = node_count(plain.grammar.rhs(plain.grammar.start))
    print(f"unsharded start rule : {start_width} RHS nodes (and growing)")
    print(f"sharded spine        : {manager.max_spine_width()} max RHS "
          f"nodes (budget 2W = {2 * manager.width})")
    print(f"shards               : {manager.shard_count}, reference depth "
          f"{manager.spine_depth()}, {manager.stats.splits} splits / "
          f"{manager.stats.merges} merges")
    print(f"documents identical  : {sharded.to_xml() == plain.to_xml()}")
    print(f"queries agree        : "
          f"{sharded.count('//entry') == plain.count('//entry')} "
          f"({sharded.count('//entry')} entries)")


if __name__ == "__main__":
    main()
