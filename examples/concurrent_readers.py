"""Snapshot isolation: long scans that survive concurrent writers.

A report walks the whole document while update traffic keeps landing.
Without isolation the scan would see a moving target -- indices shift
under it, a renamed section changes mid-walk, a recompression reshapes
the grammar it is iterating.  ``doc.snapshot()`` pins the grammar epoch
current at that instant behind a copy-on-write overlay: the view
answers the full query/navigation surface *as of then*, writers pay
only a one-time preservation for the rule bodies they actually rewrite,
and closing the view reclaims the overlay.

This walkthrough opens a snapshot, lets a writer thread apply a few
hundred batched renames and inserts, and shows the scan inside the
snapshot is byte-identical to a scan taken before the writes -- while
the live document has moved on.

Run with ``PYTHONPATH=src python examples/concurrent_readers.py``.
"""

import random
import threading

from repro import CompressedXml
from repro.trees.unranked import XmlNode


def build_log(entries: int = 2000) -> str:
    parts = ["<log><meta/>"]
    for index in range(entries):
        extra = "<ref/>" if index % 7 == 0 else ""
        parts.append(f"<entry><ip/><ts/><req>{extra}</req></entry>")
    parts.append("</log>")
    return "".join(parts)


def writer(doc: CompressedXml, rounds: int, done: threading.Event) -> None:
    rng = random.Random(11)
    for _ in range(rounds):
        base = rng.randrange(2, doc.element_count - 8)
        with doc.batch() as burst:
            burst.rename(base, rng.choice(("seen", "flagged", "ok")))
            burst.rename(base + 3, rng.choice(("audit", "entry")))
            burst.insert(base + 5, XmlNode("note", [XmlNode("by")]))
    done.set()


def main() -> None:
    doc = CompressedXml.from_xml(
        build_log(), auto_recompress_factor=2.0, shard_width=64
    )
    before = list(doc.tags())
    print(f"log: {doc.element_count} elements, "
          f"grammar {doc.compressed_size} edges, "
          f"epoch {doc.mvcc_info()['epoch']}")

    with doc.snapshot() as view:
        done = threading.Event()
        thread = threading.Thread(target=writer, args=(doc, 150, done))
        thread.start()

        # The long scan: interleaves with the writer's commits, yet
        # every answer comes from the pinned epoch.
        seen = list(view.tags())
        statuses = view.count("//req")
        thread.join()

        info = doc.mvcc_info()
        print(f"while scanning      : epochs advanced to {info['epoch']}, "
              f"pinned {info['pinned_epochs']}")
        print(f"snapshot stable     : {seen == before} "
              f"({len(seen)} tags, {statuses} <req> elements)")
        print(f"live doc moved on   : "
              f"{doc.element_count != view.element_count} "
              f"({view.element_count} -> {doc.element_count} elements)")
    print(f"overlay reclaimed   : pins now "
          f"{doc.mvcc_info()['pinned_epochs']}")

    # A fresh snapshot sees the new state, immediately.
    with doc.snapshot() as view:
        print(f"new snapshot agrees : "
              f"{list(view.tags()) == list(doc.tags())}")


if __name__ == "__main__":
    main()
