"""Tests for the first-child/next-sibling binary encoding (Figure 1)."""

import pytest
from hypothesis import given

from repro.trees.binary import (
    BinaryEncodingError,
    decode_binary,
    decode_forest,
    encode_binary,
    encode_forest,
)
from repro.trees.builder import parse_term
from repro.trees.node import tree_depth
from repro.trees.symbols import Alphabet
from repro.trees.unranked import XmlNode, xml_equal

from tests.strategies import xml_documents


def doc_figure1() -> XmlNode:
    """The unranked tree of Figure 1: f with three a-children, the first two
    of which have two a-children each."""
    return XmlNode(
        "f",
        [
            XmlNode("a", [XmlNode("a"), XmlNode("a")]),
            XmlNode("a", [XmlNode("a"), XmlNode("a")]),
            XmlNode("a"),
        ],
    )


class TestEncoding:
    def test_figure1_shape(self, alphabet):
        binary = encode_binary(doc_figure1(), alphabet)
        expected = parse_term(
            "f(a(a(#,a(#,#)),a(a(#,a(#,#)),a(#,#))),#)", alphabet
        )
        assert binary.to_sexpr() == expected.to_sexpr()

    def test_root_has_bottom_sibling(self, alphabet):
        binary = encode_binary(XmlNode("r"), alphabet)
        assert binary.child(2).symbol.is_bottom

    def test_element_symbols_have_rank_two(self, alphabet):
        encode_binary(doc_figure1(), alphabet)
        assert alphabet.get("f").rank == 2
        assert alphabet.get("a").rank == 2

    def test_binary_node_count_is_2n_plus_1(self, alphabet):
        # n elements yield n rank-2 nodes and n+1 bottom leaves.
        doc = doc_figure1()
        binary = encode_binary(doc, alphabet)
        from repro.trees.node import node_count

        elements = sum(1 for _ in doc.preorder())
        assert node_count(binary) == 2 * elements + 1

    def test_empty_forest_is_bottom(self, alphabet):
        assert encode_forest([], alphabet).symbol.is_bottom

    def test_deep_document_does_not_overflow(self, alphabet):
        # A 5000-deep chain would crash a recursive implementation.
        root = XmlNode("e")
        current = root
        for _ in range(5000):
            current = current.append(XmlNode("e"))
        binary = encode_binary(root, alphabet)
        assert tree_depth(binary) >= 5000


class TestDecoding:
    def test_figure1_roundtrip(self, alphabet):
        doc = doc_figure1()
        assert xml_equal(decode_binary(encode_binary(doc, alphabet)), doc)

    def test_forest_roundtrip(self, alphabet):
        forest = [XmlNode("a"), XmlNode("b", [XmlNode("c")]), XmlNode("a")]
        encoded = encode_forest(forest, alphabet)
        decoded = decode_forest(encoded)
        assert len(decoded) == 3
        assert [e.tag for e in decoded] == ["a", "b", "a"]
        assert decoded[1].children[0].tag == "c"

    def test_decode_rejects_wrong_rank(self, alphabet):
        bad = parse_term("g(a(#,#))", alphabet)  # g has rank 1
        with pytest.raises(BinaryEncodingError):
            decode_forest(bad)

    def test_decode_rejects_nonterminal(self, alphabet):
        A = alphabet.nonterminal("A", 0)
        from repro.trees.node import Node

        with pytest.raises(BinaryEncodingError):
            decode_forest(Node(A))

    def test_decode_binary_rejects_sibling_chain(self, alphabet):
        forest = encode_forest([XmlNode("a"), XmlNode("b")], alphabet)
        with pytest.raises(BinaryEncodingError, match="single root"):
            decode_binary(forest)

    @given(xml_documents())
    def test_roundtrip_property(self, doc):
        alphabet = Alphabet()
        assert xml_equal(decode_binary(encode_binary(doc, alphabet)), doc)
