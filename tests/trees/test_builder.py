"""Unit tests for the term parser."""

import pytest

from repro.trees.builder import TermSyntaxError, parse_term
from repro.trees.symbols import Alphabet


class TestParsing:
    def test_single_leaf(self, alphabet):
        tree = parse_term("a", alphabet)
        assert tree.label == "a" and tree.is_leaf

    def test_nested_structure(self, alphabet):
        tree = parse_term("f(a, g(b))", alphabet)
        assert tree.label == "f"
        assert tree.child(2).label == "g"
        assert tree.child(2).child(1).label == "b"

    def test_bottom_shorthand(self, alphabet):
        tree = parse_term("f(#,#)", alphabet)
        assert tree.child(1).symbol.is_bottom

    def test_parameters_recognized(self, alphabet):
        tree = parse_term("f(y1,y2)", alphabet)
        assert tree.child(1).symbol.is_parameter
        assert tree.child(2).symbol.param_index == 2

    def test_parameter_like_names_require_digits(self, alphabet):
        tree = parse_term("ya", alphabet)
        assert tree.symbol.is_terminal  # 'ya' is a plain terminal

    def test_nonterminal_names_classified(self, alphabet):
        tree = parse_term("A(a)", alphabet, nonterminal_names=frozenset({"A"}))
        assert tree.symbol.is_nonterminal

    def test_whitespace_is_insignificant(self, alphabet):
        a = parse_term("f( a , b )", alphabet)
        b = parse_term("f(a,b)", alphabet)
        assert a.to_sexpr() == b.to_sexpr()

    def test_ranks_inferred_and_remembered(self, alphabet):
        parse_term("f(a,b)", alphabet)
        assert alphabet.get("f").rank == 2


class TestErrors:
    def test_empty_input(self, alphabet):
        with pytest.raises(TermSyntaxError):
            parse_term("", alphabet)

    def test_unbalanced_parens(self, alphabet):
        with pytest.raises(TermSyntaxError):
            parse_term("f(a", alphabet)

    def test_trailing_tokens(self, alphabet):
        with pytest.raises(TermSyntaxError):
            parse_term("f(a,b) c", alphabet)

    def test_rank_conflict_across_uses(self, alphabet):
        with pytest.raises(TermSyntaxError, match="rank"):
            parse_term("f(f(a,b))", alphabet)

    def test_parameter_with_children_rejected(self, alphabet):
        with pytest.raises(TermSyntaxError):
            parse_term("y1(a)", alphabet)

    def test_empty_argument_list_rejected(self, alphabet):
        with pytest.raises(TermSyntaxError):
            parse_term("f()", alphabet)

    def test_stray_comma(self, alphabet):
        with pytest.raises(TermSyntaxError):
            parse_term("f(,a)", alphabet)
