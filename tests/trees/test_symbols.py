"""Unit tests for ranked alphabets and symbol interning."""

import pytest

from repro.trees.symbols import (
    BOTTOM_NAME,
    Alphabet,
    Symbol,
    SymbolKind,
    parameter_symbol,
)


class TestInterning:
    def test_terminal_interned_by_identity(self, alphabet):
        assert alphabet.terminal("a", 2) is alphabet.terminal("a", 2)

    def test_nonterminal_interned_by_identity(self, alphabet):
        assert alphabet.nonterminal("A", 1) is alphabet.nonterminal("A", 1)

    def test_rank_conflict_rejected(self, alphabet):
        alphabet.terminal("a", 2)
        with pytest.raises(ValueError, match="already interned"):
            alphabet.terminal("a", 0)

    def test_kind_conflict_rejected(self, alphabet):
        alphabet.terminal("a", 2)
        with pytest.raises(ValueError, match="already interned"):
            alphabet.nonterminal("a", 2)

    def test_get_returns_none_for_unknown(self, alphabet):
        assert alphabet.get("missing") is None

    def test_contains_and_len(self, alphabet):
        alphabet.terminal("a", 0)
        alphabet.nonterminal("A", 1)
        assert "a" in alphabet and "A" in alphabet
        assert len(alphabet) == 2

    def test_terminals_and_nonterminals_partition(self, alphabet):
        a = alphabet.terminal("a", 0)
        A = alphabet.nonterminal("A", 1)
        assert alphabet.terminals() == [a]
        assert alphabet.nonterminals() == [A]


class TestBottom:
    def test_bottom_is_rank0_terminal(self, alphabet):
        bottom = alphabet.bottom()
        assert bottom.rank == 0
        assert bottom.is_terminal
        assert bottom.is_bottom
        assert bottom.name == BOTTOM_NAME

    def test_bottom_interned(self, alphabet):
        assert alphabet.bottom() is alphabet.bottom()

    def test_non_bottom_terminal_is_not_bottom(self, alphabet):
        assert not alphabet.terminal("a", 0).is_bottom


class TestParameters:
    def test_parameter_names_and_indices(self):
        y3 = parameter_symbol(3)
        assert y3.name == "y3"
        assert y3.param_index == 3
        assert y3.rank == 0
        assert y3.is_parameter

    def test_parameters_are_globally_interned(self):
        assert parameter_symbol(2) is parameter_symbol(2)

    def test_parameter_index_must_be_positive(self):
        with pytest.raises(ValueError):
            parameter_symbol(0)

    def test_direct_parameter_construction_validated(self):
        with pytest.raises(ValueError):
            Symbol("y1", 1, SymbolKind.PARAMETER, param_index=1)


class TestFreshNames:
    def test_fresh_nonterminal_avoids_existing_names(self, alphabet):
        alphabet.nonterminal("X_0", 0)
        fresh = alphabet.fresh_nonterminal(2)
        assert fresh.name != "X_0"
        assert fresh.rank == 2
        assert fresh.is_nonterminal

    def test_fresh_names_are_distinct(self, alphabet):
        names = {alphabet.fresh_nonterminal(0).name for _ in range(20)}
        assert len(names) == 20

    def test_fresh_terminal_prefix(self, alphabet):
        fresh = alphabet.fresh_terminal(2, prefix="lbl")
        assert fresh.name.startswith("lbl_")
        assert fresh.is_terminal

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            Symbol("x", -1, SymbolKind.TERMINAL)


class TestCloneNamespace:
    def test_clone_shares_symbol_objects(self, alphabet):
        a = alphabet.terminal("a", 2)
        clone = alphabet.clone_namespace()
        assert clone.get("a") is a

    def test_clone_counters_independent(self, alphabet):
        clone = alphabet.clone_namespace()
        fresh_in_clone = clone.fresh_nonterminal(0)
        # The original can still mint the same name (clone is independent).
        assert fresh_in_clone.name not in alphabet
