"""Unit tests for ranked tree nodes and structural helpers."""

import pytest
from hypothesis import given

from repro.trees.builder import parse_term
from repro.trees.node import (
    Node,
    deep_copy,
    deep_copy_with_map,
    edge_count,
    node_count,
    replace_node,
    tree_depth,
    tree_equal,
)
from repro.trees.symbols import Alphabet

from tests.strategies import ranked_trees


def make(alphabet, term):
    return parse_term(term, alphabet)


class TestConstruction:
    def test_children_count_must_match_rank(self, alphabet):
        f = alphabet.terminal("f", 2)
        with pytest.raises(ValueError, match="rank"):
            Node(f, [Node(alphabet.bottom())])

    def test_children_get_parent_pointers(self, alphabet):
        tree = make(alphabet, "f(a,b)")
        assert tree.children[0].parent is tree
        assert tree.children[1].parent is tree
        assert tree.parent is None

    def test_leaf_properties(self, alphabet):
        leaf = Node(alphabet.bottom())
        assert leaf.is_leaf and leaf.is_root


class TestChildAccess:
    def test_child_index_is_one_based(self, alphabet):
        tree = make(alphabet, "f(a,b)")
        assert tree.children[0].child_index() == 1
        assert tree.children[1].child_index() == 2

    def test_child_accessor_matches_paper_notation(self, alphabet):
        tree = make(alphabet, "f(a,b)")
        assert tree.child(1).label == "a"
        assert tree.child(2).label == "b"

    def test_child_index_of_root_raises(self, alphabet):
        tree = make(alphabet, "f(a,b)")
        with pytest.raises(ValueError):
            tree.child_index()


class TestMutation:
    def test_set_child_reparents_both_nodes(self, alphabet):
        tree = make(alphabet, "f(a,b)")
        new = Node(alphabet.terminal("c", 0))
        old = tree.set_child(1, new)
        assert old.label == "a" and old.parent is None
        assert tree.child(1) is new and new.parent is tree

    def test_replace_node_splices(self, alphabet):
        tree = make(alphabet, "f(g(a),b)")
        target = tree.child(1)
        replacement = Node(alphabet.terminal("c", 0))
        replace_node(target, replacement)
        assert tree.to_sexpr() == "f(c,b)"

    def test_replace_root_raises(self, alphabet):
        tree = make(alphabet, "f(a,b)")
        with pytest.raises(ValueError):
            replace_node(tree, Node(alphabet.bottom()))


class TestCopyAndEquality:
    def test_deep_copy_is_structurally_equal_but_fresh(self, alphabet):
        tree = make(alphabet, "f(g(a),f(b,c))")
        copy = deep_copy(tree)
        assert tree_equal(tree, copy)
        assert copy is not tree
        assert copy.children[0] is not tree.children[0]

    def test_deep_copy_map_covers_every_node(self, alphabet):
        tree = make(alphabet, "f(g(a),b)")
        copy, mapping = deep_copy_with_map(tree)
        assert len(mapping) == node_count(tree)
        assert mapping[id(tree)] is copy
        inner = tree.children[0].children[0]
        assert mapping[id(inner)].label == "a"

    def test_tree_equal_detects_label_difference(self, alphabet):
        assert not tree_equal(make(alphabet, "f(a,b)"), make(alphabet, "f(a,c)"))

    def test_tree_equal_same_shape(self, alphabet):
        assert tree_equal(make(alphabet, "f(a,b)"), make(alphabet, "f(a,b)"))

    @given(ranked_trees())
    def test_deep_copy_roundtrip_property(self, tree):
        copy = deep_copy(tree)
        assert tree_equal(tree, copy)
        assert node_count(copy) == node_count(tree)


class TestMeasures:
    def test_node_and_edge_count(self, alphabet):
        tree = make(alphabet, "f(g(a),b)")
        assert node_count(tree) == 4
        assert edge_count(tree) == 3

    def test_depth_of_single_node(self, alphabet):
        assert tree_depth(Node(alphabet.bottom())) == 0

    def test_depth_of_chain(self, alphabet):
        tree = make(alphabet, "g(g(g(a)))")
        assert tree_depth(tree) == 3

    @given(ranked_trees())
    def test_edges_are_nodes_minus_one(self, tree):
        assert edge_count(tree) == node_count(tree) - 1


class TestRendering:
    def test_sexpr_roundtrips_through_parser(self, alphabet):
        source = "f(g(f(a,#)),f(#,a))"
        tree = make(alphabet, source)
        assert tree.to_sexpr() == source

    def test_repr_is_truncated_for_large_trees(self, alphabet):
        deep = "g(" * 50 + "a" + ")" * 50
        tree = make(alphabet, deep)
        assert len(repr(tree)) < 100
