"""Unit and property tests for traversals and preorder addressing."""

import pytest
from hypothesis import given

from repro.trees.builder import parse_term
from repro.trees.node import node_count
from repro.trees.traversal import (
    ancestors,
    find_first,
    leaves,
    node_at_preorder,
    postorder,
    preorder,
    preorder_index_of,
    preorder_labels,
    preorder_with_index,
)

from tests.strategies import ranked_trees


@pytest.fixture
def tree(alphabet):
    #        f
    #      /   \
    #     g     f
    #     |    / \
    #     a   b   c
    return parse_term("f(g(a),f(b,c))", alphabet)


class TestOrders:
    def test_preorder_visits_parent_first(self, tree):
        assert preorder_labels(tree) == ["f", "g", "a", "f", "b", "c"]

    def test_postorder_visits_children_first(self, tree):
        labels = [n.label for n in postorder(tree)]
        assert labels == ["a", "g", "b", "c", "f", "f"]

    def test_orders_visit_every_node_once(self, tree):
        assert len(list(preorder(tree))) == node_count(tree)
        assert len(list(postorder(tree))) == node_count(tree)

    @given(ranked_trees())
    def test_postorder_is_preorder_permutation(self, tree):
        pre = {id(n) for n in preorder(tree)}
        post = {id(n) for n in postorder(tree)}
        assert pre == post


class TestAddressing:
    def test_indices_are_sequential(self, tree):
        indices = [i for i, _ in preorder_with_index(tree)]
        assert indices == list(range(6))

    def test_node_at_preorder(self, tree):
        assert node_at_preorder(tree, 0) is tree
        assert node_at_preorder(tree, 2).label == "a"
        assert node_at_preorder(tree, 5).label == "c"

    def test_node_at_preorder_out_of_range(self, tree):
        with pytest.raises(IndexError):
            node_at_preorder(tree, 6)
        with pytest.raises(IndexError):
            node_at_preorder(tree, -1)

    def test_preorder_index_of_unknown_node(self, tree, alphabet):
        from repro.trees.node import Node

        foreign = Node(alphabet.bottom())
        with pytest.raises(ValueError):
            preorder_index_of(tree, foreign)

    @given(ranked_trees())
    def test_addressing_roundtrip(self, tree):
        for index, node in preorder_with_index(tree):
            assert node_at_preorder(tree, index) is node
            assert preorder_index_of(tree, node) == index


class TestQueries:
    def test_leaves_left_to_right(self, tree):
        assert [n.label for n in leaves(tree)] == ["a", "b", "c"]

    def test_ancestors_bottom_up(self, tree):
        leaf = node_at_preorder(tree, 2)  # the 'a'
        assert [n.label for n in ancestors(leaf)] == ["g", "f"]

    def test_find_first_in_preorder(self, tree):
        found = find_first(tree, lambda n: n.label == "f" and not n.is_root)
        assert found is node_at_preorder(tree, 3)

    def test_find_first_missing(self, tree):
        assert find_first(tree, lambda n: n.label == "zzz") is None
