"""Tests for the structure-only XML scanner and serializer."""

import pytest
from hypothesis import given

from repro.trees.stats import document_stats
from repro.trees.unranked import XmlNode, xml_equal
from repro.trees.xml_io import XmlParseError, parse_xml, serialize_xml

from tests.strategies import xml_documents


class TestParsing:
    def test_simple_document(self):
        root = parse_xml("<a><b/><c></c></a>")
        assert root.tag == "a"
        assert [c.tag for c in root.children] == ["b", "c"]

    def test_text_content_is_discarded(self):
        root = parse_xml("<a>hello <b>world</b> bye</a>")
        assert [c.tag for c in root.children] == ["b"]

    def test_attributes_are_discarded(self):
        root = parse_xml('<a id="1" href=\'x > y\'><b class="z"/></a>')
        assert root.tag == "a"
        assert root.children[0].tag == "b"

    def test_comments_and_pis_ignored(self):
        text = "<?xml version='1.0'?><!-- c --><a><!-- <b/> --><?pi data?><c/></a>"
        root = parse_xml(text)
        assert [c.tag for c in root.children] == ["c"]

    def test_cdata_ignored(self):
        root = parse_xml("<a><![CDATA[<fake/>]]><b/></a>")
        assert [c.tag for c in root.children] == ["b"]

    def test_doctype_ignored(self):
        text = '<!DOCTYPE a [<!ELEMENT a (b)>]><a><b/></a>'
        assert parse_xml(text).tag == "a"

    def test_namespaced_and_dashed_names(self):
        root = parse_xml("<ns:a><x-y.z/></ns:a>")
        assert root.tag == "ns:a"
        assert root.children[0].tag == "x-y.z"

    def test_deep_nesting(self):
        depth = 4000
        text = "".join(f"<e{i}>" for i in range(depth))
        text += "".join(f"</e{i}>" for i in reversed(range(depth)))
        root = parse_xml(text)
        assert document_stats(root).depth == depth - 1

    def test_trailing_whitespace_tolerated(self):
        assert parse_xml("<a/>\n\n").tag == "a"


class TestParseErrors:
    def test_mismatched_tags(self):
        with pytest.raises(XmlParseError, match="mismatched"):
            parse_xml("<a><b></a></b>")

    def test_unclosed_element(self):
        with pytest.raises(XmlParseError, match="unclosed"):
            parse_xml("<a><b/>")

    def test_stray_closing_tag(self):
        with pytest.raises(XmlParseError, match="unexpected closing"):
            parse_xml("</a>")

    def test_empty_input(self):
        with pytest.raises(XmlParseError, match="no element"):
            parse_xml("   ")

    def test_multiple_roots(self):
        with pytest.raises(XmlParseError, match="multiple top-level"):
            parse_xml("<a/><b/>")


class TestSerialization:
    def test_compact_output(self):
        doc = XmlNode("a", [XmlNode("b"), XmlNode("c", [XmlNode("d")])])
        assert serialize_xml(doc) == "<a><b/><c><d/></c></a>"

    def test_pretty_output_parses_back(self):
        doc = XmlNode("a", [XmlNode("b", [XmlNode("c")])])
        pretty = serialize_xml(doc, indent=2)
        assert "\n" in pretty
        assert xml_equal(parse_xml(pretty), doc)

    @given(xml_documents())
    def test_roundtrip_property(self, doc):
        assert xml_equal(parse_xml(serialize_xml(doc)), doc)

    @given(xml_documents(tags=("ns:x", "a-b", "q.r")))
    def test_roundtrip_with_exotic_names(self, doc):
        assert xml_equal(parse_xml(serialize_xml(doc)), doc)


class TestStats:
    def test_document_stats_on_known_doc(self):
        doc = parse_xml("<a><b><c/></b><b/></a>")
        stats = document_stats(doc)
        assert stats.elements == 4
        assert stats.edges == 3
        assert stats.depth == 2
        assert stats.distinct_labels == 3
        assert stats.label_histogram == {"a": 1, "b": 2, "c": 1}

    def test_single_element_stats(self):
        stats = document_stats(XmlNode("root"))
        assert stats.edges == 0 and stats.depth == 0
