"""Group commit, WAL-before-epoch-publish, non-blocking checkpoints,
and continuation-chain recovery.

The ordering rule under test everywhere: in group-commit mode a record
is *written* to the WAL before the in-memory apply publishes a new
grammar epoch (only the fsync is deferred, to just before the commit is
acknowledged).  A failed append must therefore leave the epoch -- and
the document -- exactly as they were; a failed fsync degrades the store
the same way a serial append exhausting its retries does.
"""

import os

import pytest

from repro.api import CompressedXml
from repro.storage.durable import (
    CheckpointError,
    DurableXml,
    StoreDegraded,
)
from repro.storage.faults import FaultyIO, SimulatedCrash
from repro.storage.recovery import StoreLayout
from repro.storage.wal import SegmentedWal
from repro.trees.unranked import XmlNode

XML = "<log>" + "<entry><ip/><status/></entry>" * 5 + "</log>"
HUGE = 10 ** 9  # checkpoint_wal_bytes: never auto-checkpoint


def make_store(directory, io=None, **kwargs):
    kwargs.setdefault("checkpoint_wal_bytes", HUGE)
    return DurableXml.from_xml(directory, XML, io=io,
                               group_commit=True, **kwargs)


class TestGroupCommitEquivalence:
    def test_group_commits_match_the_serial_store(self, tmp_path):
        serial = DurableXml.from_xml(str(tmp_path / "serial"), XML)
        group = make_store(str(tmp_path / "group"))
        for store in (serial, group):
            store.rename(1, "first")
            store.append_child(0, XmlNode("extra", [XmlNode("deep")]))
            store.insert(2, XmlNode("wedge"))
            store.delete(5)
            with store.batch() as b:
                b.rename(3, "batched")
                b.append_child(0, XmlNode("tail"))
        assert group.to_xml() == serial.to_xml()
        assert group.health()["mvcc"]["group_commit"] is True
        serial.close()
        group.close()

    def test_group_commits_replay_on_reopen(self, tmp_path):
        directory = str(tmp_path / "store")
        store = make_store(directory)
        store.rename(1, "durable")
        store.append_child(0, XmlNode("grown"))
        expected = store.to_xml()
        store.close()
        with DurableXml.open(directory) as reopened:
            assert reopened.to_xml() == expected
            assert reopened.last_recovery.replayed == 2

    def test_snapshot_pins_across_group_commits(self, tmp_path):
        store = make_store(str(tmp_path / "store"))
        before = store.to_xml()
        with store.snapshot() as view:
            store.rename(1, "moved")
            store.delete(store.element_count - 1)
            assert view.to_xml() == before
        assert store.mvcc_info()["pinned_snapshots"] == 0
        store.close()


class TestWalBeforeEpochPublish:
    def test_successful_commit_logs_then_publishes(self, tmp_path):
        store = make_store(str(tmp_path / "store"))
        records = store._wal.record_count
        epoch = store.document.grammar.epoch
        store.rename(1, "ordered")
        assert store._wal.record_count == records + 1
        assert store.document.grammar.epoch > epoch
        store.close()

    def test_failed_append_publishes_nothing(self, tmp_path):
        """The pinned ordering: if the WAL write fails, the epoch never
        advances and the document text is untouched."""
        io = FaultyIO(error_label="wal:append:before-write",
                      error_persistent=True)
        store = make_store(str(tmp_path / "store"), io=io)
        io.disarm()
        before = store.to_xml()
        epoch = store.document.grammar.epoch
        io.arm()
        with pytest.raises(StoreDegraded):
            store.rename(1, "lost")
        assert store.document.grammar.epoch == epoch
        assert store.to_xml() == before
        assert store.degraded
        with pytest.raises(StoreDegraded):
            store.rename(1, "still-read-only")

    def test_failed_group_fsync_degrades_after_apply(self, tmp_path):
        """A sync failure happens *after* the apply: the in-memory
        state moved, the record is in the (unsynced) log, and the store
        flips read-only rather than acknowledge."""
        io = FaultyIO(error_label="wal:sync:before-fsync",
                      error_persistent=True)
        directory = str(tmp_path / "store")
        store = make_store(directory, io=io)
        io.disarm()
        epoch = store.document.grammar.epoch
        io.arm()
        with pytest.raises(StoreDegraded):
            store.rename(1, "applied-not-durable")
        assert store.document.grammar.epoch > epoch
        assert store.degraded
        store.close()
        # The record was written (just not fsync'd): a clean reopen
        # replays it -- the unacknowledged-but-durable shape the serial
        # crash matrix already allows.
        with DurableXml.open(directory) as reopened:
            assert reopened.tag_of(1) == "applied-not-durable"


GROUP_CRASH_LABELS = (
    "wal:append:before-write",
    "wal:append:mid-write",
    "wal:append:after-write",
    "wal:sync:before-fsync",
    "wal:sync:after-fsync",
)


class TestGroupCrashMatrix:
    @pytest.mark.parametrize("label", GROUP_CRASH_LABELS)
    def test_kill_in_the_commit_pipeline(self, tmp_path, label):
        """Committed-prefix property through the pipelined path: after
        a kill anywhere in append/fsync, the store reopens to the
        acknowledged renames plus at most one written-not-acknowledged
        record."""
        directory = str(tmp_path / "store")
        io = FaultyIO(crash_label=label)
        io.disarm()
        store = make_store(directory, io=io)
        refs = [store.to_xml()]
        oracle = CompressedXml.from_xml(XML)
        for round_number in range(4):
            oracle.rename(1, f"r{round_number}")
            refs.append(oracle.to_xml())
        io.arm()
        acked = 0
        with pytest.raises(SimulatedCrash):
            for round_number in range(4):
                store.rename(1, f"r{round_number}")
                acked += 1
        with DurableXml.open(directory) as reopened:
            assert reopened.to_xml() in refs[acked:acked + 2], label
            reopened.rename(0, "reborn")
            survivor = reopened.to_xml()
        with DurableXml.open(directory) as again:
            assert again.to_xml() == survivor


class TestConcurrentCheckpoint:
    def test_checkpoint_advances_generation_and_folds_the_chain(
        self, tmp_path
    ):
        directory = str(tmp_path / "store")
        store = make_store(directory)
        store.rename(1, "pre-checkpoint")
        assert store.checkpoint() == 1
        assert store.generation == 1
        store.rename(2, "post-checkpoint")
        expected = store.to_xml()
        store.close()
        with DurableXml.open(directory) as reopened:
            assert reopened.generation == 1
            assert reopened.to_xml() == expected
            assert reopened.last_recovery.replayed == 1

    def test_checkpoint_while_a_snapshot_is_pinned(self, tmp_path):
        store = make_store(str(tmp_path / "store"))
        with store.snapshot() as view:
            before = view.to_xml()
            store.rename(1, "while-pinned")
            store.checkpoint()
            assert view.to_xml() == before
        assert store.generation == 1
        store.close()

    def test_failed_snapshot_write_leaves_a_live_continuation(
        self, tmp_path
    ):
        """The checkpoint cut over, then the snapshot write failed: the
        store keeps committing into the never-manifested chain, and a
        reopen adopts it as a continuation and folds it."""
        io = FaultyIO(error_label="snapshot:write:before-write")
        io.disarm()
        directory = str(tmp_path / "store")
        store = make_store(directory, io=io)
        store.rename(1, "before-cutover")
        io.arm()
        with pytest.raises(CheckpointError, match="cut over"):
            store.checkpoint()
        # Not degraded: writes continue, now into the wal.1 chain
        # while the manifest still points at generation 0.
        assert not store.degraded
        assert store.generation == 0
        store.rename(2, "after-cutover")
        expected = store.to_xml()
        store.close()
        layout = StoreLayout(directory)
        assert not os.path.exists(layout.snapshot_path(1))

        with DurableXml.open(directory) as reopened:
            assert reopened.to_xml() == expected
            assert reopened.last_recovery.continuation_generations == [1]
            # The fold checkpointed past the adopted chain.
            assert reopened.generation == 2
        # Idempotent: a second reopen finds a normal single-chain store.
        with DurableXml.open(directory) as again:
            assert again.to_xml() == expected
            assert again.last_recovery.continuation_generations == []

    def test_empty_continuation_stray_is_ignored(self, tmp_path):
        """A record-less higher-generation chain (the serial
        checkpoint's pre-commit-point debris) keeps its historical
        meaning: not adopted, store opens exactly as before."""
        directory = str(tmp_path / "store")
        store = make_store(directory)
        store.rename(1, "kept")
        expected = store.to_xml()
        store.close()
        SegmentedWal(directory, 1, create=True).close()
        with DurableXml.open(directory) as reopened:
            assert reopened.to_xml() == expected
            assert reopened.last_recovery.continuation_generations == []
            assert reopened.generation == 0

    def test_generation_gap_after_failed_checkpoint_attempts(
        self, tmp_path
    ):
        """Each failed concurrent checkpoint burns a generation number;
        the next attempt targets a fresh one and the store still
        converges."""
        io = FaultyIO(error_label="snapshot:write:before-write",
                      error_count=2)
        io.disarm()
        directory = str(tmp_path / "store")
        store = make_store(directory, io=io)
        store.rename(1, "one")
        io.arm()
        with pytest.raises(CheckpointError):
            store.checkpoint()  # cut over to wal.1, snapshot failed
        store.rename(2, "two")
        with pytest.raises(CheckpointError):
            store.checkpoint()  # cut over to wal.2, snapshot failed
        store.rename(3, "three")
        # Third attempt succeeds and folds everything: the manifest
        # jumps 0 -> 3 over the two burned generations.
        assert store.checkpoint() == 3
        assert store.last_checkpoint_error is None
        expected = store.to_xml()
        store.close()
        with DurableXml.open(directory) as reopened:
            assert reopened.generation == 3
            assert reopened.to_xml() == expected
            assert reopened.last_recovery.continuation_generations == []
            assert reopened.scrub().ok
