"""The ``DurableXml`` facade: WAL-first commits, checkpoint cadence,
and the crash matrix -- recovery always yields exactly a committed
prefix of the acknowledged operations, never a half-applied batch."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CompressedXml
from repro.storage.durable import DurableXml
from repro.storage.faults import (
    CRASH_POINTS,
    FaultyIO,
    SimulatedCrash,
)
from repro.storage.recovery import (
    MANIFEST_NAME,
    RecoveryError,
    StoreLayout,
)
from repro.trees.unranked import XmlNode
from repro.updates.batch import BatchAppend, BatchDelete, BatchRename
from repro.updates.operations import UpdateError

BASE_XML = "<log>" + "<entry><ip/><status/></entry>" * 6 + "</log>"

HUGE = 1 << 30  # checkpoint threshold that never triggers


def manifest_missing(directory):
    return not os.path.exists(os.path.join(directory, MANIFEST_NAME))


class TestCommitProtocol:
    def test_commits_survive_reopen(self, tmp_path):
        directory = str(tmp_path / "store")
        store = DurableXml.from_xml(directory, BASE_XML)
        store.rename(1, "record")
        store.insert(2, XmlNode("header"))
        store.append_child(0, XmlNode("trailer", [XmlNode("sum")]))
        store.delete(5)
        expected = store.to_xml()
        store.close()

        with DurableXml.open(directory) as reopened:
            assert reopened.last_recovery.replayed == 4
            assert reopened.to_xml() == expected
            assert reopened.element_count == store.element_count

    def test_reads_are_delegated(self, tmp_path):
        store = DurableXml.from_xml(str(tmp_path / "store"), BASE_XML)
        assert store.element_count == 19
        assert store.tag_of(0) == "log"
        assert store.select("//status") == store.document.select("//status")
        assert "entry" in set(store.tags())
        store.close()

    def test_existing_store_is_refused(self, tmp_path):
        directory = str(tmp_path / "store")
        DurableXml.from_xml(directory, BASE_XML).close()
        with pytest.raises(FileExistsError, match="overwrite"):
            DurableXml.from_xml(directory, BASE_XML)
        with DurableXml.from_xml(directory, "<a><b/></a>",
                                 overwrite=True) as store:
            assert store.element_count == 2

    def test_failed_op_is_a_no_op_on_disk_and_in_memory(self, tmp_path):
        directory = str(tmp_path / "store")
        store = DurableXml.from_xml(directory, BASE_XML)
        store.rename(1, "record")
        before_xml = store.to_xml()
        before_wal = store.wal_size

        with pytest.raises(IndexError):
            store.rename(10 ** 6, "nope")
        with pytest.raises(IndexError):
            store.delete(10 ** 6)
        assert store.to_xml() == before_xml
        assert store.wal_size == before_wal
        store.close()
        with DurableXml.open(directory) as reopened:
            assert reopened.last_recovery.replayed == 1
            assert reopened.to_xml() == before_xml

    def test_failed_batch_is_all_or_nothing(self, tmp_path):
        directory = str(tmp_path / "store")
        store = DurableXml.from_xml(directory, BASE_XML)
        before_xml = store.to_xml()
        before_wal = store.wal_size

        with pytest.raises((UpdateError, IndexError)):
            store.apply_batch([
                BatchRename(1, "would-apply"),
                BatchAppend(0, [XmlNode("also-would")]),
                BatchDelete(10 ** 6),
            ])
        # The earlier ops of the batch must not leak: not into memory,
        # not into the log, not into a future replay.
        assert store.to_xml() == before_xml
        assert store.wal_size == before_wal
        store.close()
        with DurableXml.open(directory) as reopened:
            assert reopened.last_recovery.replayed == 0
            assert reopened.to_xml() == before_xml

    def test_batch_builder_commits_one_record(self, tmp_path):
        directory = str(tmp_path / "store")
        store = DurableXml.from_xml(directory, BASE_XML)
        with store.batch() as batch:
            batch.rename(1, "record").append_child(0, XmlNode("z"))
        expected = store.to_xml()
        store.close()
        with DurableXml.open(directory) as reopened:
            assert reopened.last_recovery.replayed == 1  # ONE record
            assert reopened.to_xml() == expected

    def test_context_manager_closes_the_wal(self, tmp_path):
        with DurableXml.from_xml(str(tmp_path / "store"),
                                 BASE_XML) as store:
            store.rename(1, "record")
        assert store._wal.closed


class TestCheckpointing:
    def test_threshold_rides_every_commit(self, tmp_path):
        directory = str(tmp_path / "store")
        store = DurableXml.from_xml(directory, BASE_XML,
                                    checkpoint_wal_bytes=1)
        assert store.generation == 0
        store.rename(1, "one")
        assert store.generation == 1
        store.rename(2, "two")
        assert store.generation == 2
        # Post-checkpoint the live WAL is empty: recovery replays 0.
        expected = store.to_xml()
        store.close()
        with DurableXml.open(directory) as reopened:
            assert reopened.last_recovery.replayed == 0
            assert reopened.generation == 2
            assert reopened.to_xml() == expected

    def test_old_generations_are_retired(self, tmp_path):
        directory = str(tmp_path / "store")
        store = DurableXml.from_xml(directory, BASE_XML,
                                    checkpoint_wal_bytes=1)
        for index, tag in enumerate(("a", "b", "c", "d"), start=1):
            store.rename(index, tag)
        layout = StoreLayout(directory)
        # Only the live generation and its degradation fallback remain.
        assert layout.generations_on_disk() == [3, 4]
        assert not os.path.exists(layout.wal_path(1))
        store.close()

    def test_manual_checkpoint(self, tmp_path):
        directory = str(tmp_path / "store")
        store = DurableXml.from_xml(directory, BASE_XML,
                                    checkpoint_wal_bytes=HUGE)
        store.rename(1, "record")
        assert store.generation == 0
        wal_before = store.wal_size
        assert store.checkpoint() == 1
        assert store.wal_size < wal_before  # fresh, empty WAL
        expected = store.to_xml()
        store.close()
        with DurableXml.open(directory) as reopened:
            assert reopened.generation == 1
            assert reopened.last_recovery.replayed == 0
            assert reopened.to_xml() == expected


# ----------------------------------------------------------------------
# the crash matrix
# ----------------------------------------------------------------------
def committed_prefix_states():
    """``refs[i]``: the document after the first ``i`` scripted steps."""
    oracle = CompressedXml.from_xml(BASE_XML)
    refs = [oracle.to_xml()]
    oracle.rename(1, "record")
    refs.append(oracle.to_xml())
    oracle.append_child(0, XmlNode("extra", [XmlNode("x")]))
    refs.append(oracle.to_xml())
    refs.append(refs[-1])  # failing rename: no state change
    refs.append(refs[-1])  # checkpoint: no state change
    refs.append(refs[-1])  # grammar export: no state change
    oracle.delete(4)
    refs.append(oracle.to_xml())
    refs.append(refs[-1])  # checkpoint: no state change
    oracle.rename(2, "zzz")
    refs.append(oracle.to_xml())
    return refs


def run_script(store):
    """The scripted mutation history; yields after each acknowledged
    step (commits, a cleanly failing op, and explicit checkpoints, so
    every crash-point site is exercised)."""
    store.rename(1, "record")
    yield
    store.append_child(0, XmlNode("extra", [XmlNode("x")]))
    yield
    try:
        store.rename(10 ** 6, "nope")  # exercises wal:rollback
    except IndexError:
        pass
    yield
    store.checkpoint()
    yield
    store.save_grammar(
        os.path.join(store.directory, "export.grammar"), io=store._io
    )
    yield
    store.delete(4)
    yield
    store.checkpoint()  # retires generation 0: checkpoint:clean
    yield
    store.rename(2, "zzz")
    yield


#: Labels the script legitimately never reaches: torn-tail truncation
#: happens while *opening* a WAL, which the kill-during-commit script
#: never does (dedicated tests below cover them).
UNREACHED = ("wal:open:before-truncate", "wal:open:after-truncate")


def run_killed(directory, io):
    """Run the script under ``io`` until the simulated kill; returns
    the number of acknowledged steps, or None if no crash fired."""
    acked = 0
    try:
        store = DurableXml.create(
            directory, CompressedXml.from_xml(BASE_XML), io=io,
            checkpoint_wal_bytes=HUGE, wal_segment_bytes=1,
        )
        for _ in run_script(store):
            acked += 1
    except SimulatedCrash:
        return acked
    return None


class TestCrashMatrix:
    @pytest.mark.parametrize("label", CRASH_POINTS)
    def test_kill_at_every_crash_point(self, tmp_path, label):
        refs = committed_prefix_states()
        directory = str(tmp_path / "store")
        acked = run_killed(directory, FaultyIO(crash_label=label))
        if acked is None:
            assert label in UNREACHED, f"{label} never fired"
            return

        try:
            store = DurableXml.open(directory)
        except RecoveryError:
            # Legal only while the store was still being born: the kill
            # landed before the very first manifest switch.
            assert manifest_missing(directory)
            assert acked == 0
            return
        # THE property: exactly a committed prefix -- the acknowledged
        # steps, plus at most the one durable-but-unacknowledged op.
        allowed = refs[acked:acked + 2]
        assert store.to_xml() in allowed, label
        # ... and the recovered store is fully writable again.
        store.rename(0, "reborn")
        survivor = store.to_xml()
        store.close()
        with DurableXml.open(directory) as reopened:
            assert reopened.to_xml() == survivor

    @pytest.mark.parametrize("label", UNREACHED)
    def test_kill_during_torn_tail_truncation(self, tmp_path, label):
        directory = str(tmp_path / "store")
        store = DurableXml.from_xml(directory, BASE_XML)
        store.rename(1, "record")
        expected = store.to_xml()
        store.close()
        layout = StoreLayout(directory)
        with open(layout.wal_path(0), "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef" * 3)

        with pytest.raises(SimulatedCrash):
            DurableXml.open(directory, io=FaultyIO(crash_label=label))
        with DurableXml.open(directory) as reopened:
            assert reopened.to_xml() == expected
            assert reopened.last_recovery.replayed == 1


# ----------------------------------------------------------------------
# the committed-prefix property, over random documents and schedules
# ----------------------------------------------------------------------
KINDS = ("rename", "insert", "append", "delete", "batch", "checkpoint")
FRACTIONS = (0.0, 0.31, 0.64, 0.97)


def build_steps(tree, script):
    """Concretize an abstract script against a sequential oracle;
    returns ``(steps, refs)`` with ``refs[i]`` the state after ``i``
    steps (batches count as ONE step -- their atomicity is the point)."""
    oracle = CompressedXml.from_document(tree)
    steps = []
    refs = [oracle.to_xml()]
    for kind, fraction, tag in script:
        count = oracle.element_count
        if kind == "rename":
            index = int(fraction * count)
            oracle.rename(index, tag)
            steps.append(("rename", (index, tag)))
        elif kind == "insert":
            if count < 2:
                continue
            index = 1 + int(fraction * (count - 1))
            oracle.insert(index, XmlNode(tag))
            steps.append(("insert", (index, tag)))
        elif kind == "append":
            index = int(fraction * count)
            oracle.append_child(index, XmlNode(tag, [XmlNode("kid")]))
            steps.append(("append", (index, tag)))
        elif kind == "delete":
            if count < 3:
                continue
            index = 1 + int(fraction * (count - 1))
            oracle.delete(index)
            steps.append(("delete", (index,)))
        elif kind == "batch":
            index = int(fraction * count)
            oracle.apply_batch([BatchRename(index, tag),
                                BatchAppend(0, [XmlNode(tag)])])
            steps.append(("batch", (index, tag)))
        else:
            steps.append(("checkpoint", ()))
        refs.append(oracle.to_xml())
    return steps, refs


def apply_step(store, step):
    kind, args = step
    if kind == "rename":
        store.rename(*args)
    elif kind == "insert":
        index, tag = args
        store.insert(index, XmlNode(tag))
    elif kind == "append":
        index, tag = args
        store.append_child(index, XmlNode(tag, [XmlNode("kid")]))
    elif kind == "delete":
        store.delete(*args)
    elif kind == "batch":
        index, tag = args
        store.apply_batch([BatchRename(index, tag),
                           BatchAppend(0, [XmlNode(tag)])])
    else:
        store.checkpoint()


def run_steps(directory, tree, steps, io):
    store = DurableXml.create(
        directory, CompressedXml.from_document(tree), io=io,
        checkpoint_wal_bytes=HUGE,
    )
    acked = 0
    for step in steps:
        apply_step(store, step)
        acked += 1
    store.close()
    return acked


class TestCommittedPrefixProperty:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_recovery_yields_a_committed_prefix(
        self, tmp_path_factory, data
    ):
        from tests.strategies import xml_documents

        tree = data.draw(xml_documents(max_elements=12), label="doc")
        script = data.draw(
            st.lists(
                st.tuples(st.sampled_from(KINDS),
                          st.sampled_from(FRACTIONS),
                          st.sampled_from(("n1", "n2"))),
                min_size=1, max_size=5,
            ),
            label="script",
        )
        steps, refs = build_steps(tree, script)

        # Counting run: how many crash points does this history hit?
        base = tmp_path_factory.mktemp("prefix")
        counter = FaultyIO(crash_invocation=10 ** 9)
        run_steps(str(base / "count"), tree, steps, counter)
        total = sum(counter.occurrences.values())
        assert total > 0

        # Kill run: die at a schedule-chosen point, then recover.
        k = data.draw(st.integers(1, total), label="kill_at")
        io = FaultyIO(crash_invocation=k)
        directory = str(base / "crash")
        acked = 0
        try:
            store = DurableXml.create(
                directory, CompressedXml.from_document(tree), io=io,
                checkpoint_wal_bytes=HUGE,
            )
            for step in steps:
                apply_step(store, step)
                acked += 1
        except SimulatedCrash:
            pass
        assert io.crashed

        try:
            recovered = DurableXml.open(directory)
        except RecoveryError:
            assert manifest_missing(directory)
            assert acked == 0
            return
        allowed = refs[acked:acked + 2]
        assert recovered.to_xml() in allowed
        recovered.close()
