"""WAL framing, scanning, torn-tail truncation, and record codecs."""

import os
import struct

import pytest

from repro.storage.wal import (
    WAL_MAGIC,
    WalRecordError,
    WriteAheadLog,
    append_record,
    batch_ops_from_record,
    batch_record,
    content_from_record,
    delete_record,
    encode_payload,
    insert_record,
    rename_record,
    scan_wal,
)
from repro.trees.unranked import XmlNode
from repro.trees.xml_io import serialize_xml
from repro.updates.batch import (
    BatchAppend,
    BatchDelete,
    BatchInsert,
    BatchRename,
)

RECORDS = [
    rename_record(3, "status"),
    insert_record(1, [XmlNode("x", [XmlNode("y")])]),
    delete_record(7),
]


def wal_file(tmp_path, name="wal"):
    return str(tmp_path / name)


class TestFraming:
    def test_create_writes_magic_only(self, tmp_path):
        path = wal_file(tmp_path)
        wal = WriteAheadLog(path, create=True)
        assert wal.size == len(WAL_MAGIC)
        wal.close()
        with open(path, "rb") as handle:
            assert handle.read() == WAL_MAGIC
        assert scan_wal(path) == ([], len(WAL_MAGIC), False)

    def test_append_then_reopen_round_trips(self, tmp_path):
        path = wal_file(tmp_path)
        wal = WriteAheadLog(path, create=True)
        offsets = [wal.append(record) for record in RECORDS]
        assert offsets[0] == len(WAL_MAGIC)
        assert offsets == sorted(offsets)
        assert wal.size == os.path.getsize(path)
        wal.close()

        reopened = WriteAheadLog(path)
        assert reopened.recovered_records == RECORDS
        assert not reopened.truncated_tail
        assert reopened.size == wal.size
        reopened.close()

    def test_append_after_reopen_continues_log(self, tmp_path):
        path = wal_file(tmp_path)
        wal = WriteAheadLog(path, create=True)
        wal.append(RECORDS[0])
        wal.close()
        wal = WriteAheadLog(path)
        wal.append(RECORDS[1])
        wal.close()
        records, _, torn = scan_wal(path)
        assert records == RECORDS[:2]
        assert not torn

    def test_not_a_wal_raises(self, tmp_path):
        path = wal_file(tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"definitely not a log")
        with pytest.raises(WalRecordError, match="bad magic"):
            scan_wal(path)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            WriteAheadLog(wal_file(tmp_path, "absent"))


class TestTornTails:
    def make_log(self, tmp_path):
        path = wal_file(tmp_path)
        wal = WriteAheadLog(path, create=True)
        for record in RECORDS:
            wal.append(record)
        wal.close()
        return path, wal.size

    def test_garbage_tail_is_truncated_on_open(self, tmp_path):
        path, valid = self.make_log(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"\x99" * 11)
        wal = WriteAheadLog(path)
        assert wal.recovered_records == RECORDS
        assert wal.truncated_tail
        assert wal.size == valid
        wal.close()
        assert os.path.getsize(path) == valid

    def test_half_written_record_is_truncated(self, tmp_path):
        path, valid = self.make_log(tmp_path)
        frame_tail = encode_payload(rename_record(9, "torn"))
        framed = struct.pack("<II", len(frame_tail), 0) + frame_tail
        with open(path, "ab") as handle:
            handle.write(framed[: len(framed) // 2])
        wal = WriteAheadLog(path)
        assert wal.recovered_records == RECORDS
        assert wal.truncated_tail
        assert wal.size == valid
        wal.close()

    def test_corrupt_payload_drops_everything_after_it(self, tmp_path):
        # Flip one byte inside the SECOND record's payload: the first
        # record survives; the corrupt one and the (valid-looking) third
        # are both dropped -- nothing beyond the first bad record can
        # have been acknowledged.
        path, _ = self.make_log(tmp_path)
        first = len(WAL_MAGIC) + 8 + len(encode_payload(RECORDS[0]))
        with open(path, "r+b") as handle:
            handle.seek(first + 8 + 2)
            byte = handle.read(1)
            handle.seek(first + 8 + 2)
            handle.write(bytes([byte[0] ^ 0xFF]))
        wal = WriteAheadLog(path)
        assert wal.recovered_records == RECORDS[:1]
        assert wal.truncated_tail
        assert wal.size == first
        wal.close()

    def test_giant_length_field_is_treated_as_torn(self, tmp_path):
        path, valid = self.make_log(tmp_path)
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", 1 << 30, 0) + b"xx")
        wal = WriteAheadLog(path)
        assert wal.recovered_records == RECORDS
        assert wal.size == valid
        wal.close()

    def test_rollback_cuts_the_tail_record(self, tmp_path):
        path = wal_file(tmp_path)
        wal = WriteAheadLog(path, create=True)
        wal.append(RECORDS[0])
        offset = wal.append(RECORDS[1])
        wal.rollback_to(offset)
        assert wal.size == offset
        wal.close()
        records, _, torn = scan_wal(path)
        assert records == RECORDS[:1]
        assert not torn

    def test_rollback_forward_is_rejected(self, tmp_path):
        path = wal_file(tmp_path)
        wal = WriteAheadLog(path, create=True)
        with pytest.raises(ValueError, match="roll forward"):
            wal.rollback_to(wal.size + 4)
        wal.close()


class TestRecordCodecs:
    def test_content_round_trips_as_xml(self):
        content = [XmlNode("a", [XmlNode("b"), XmlNode("c")]), XmlNode("d")]
        record = insert_record(2, content)
        decoded = content_from_record(record["xml"])
        assert [serialize_xml(node) for node in decoded] == \
            [serialize_xml(node) for node in content]

    def test_payload_encoding_is_canonical(self):
        record = {"tag": "z", "op": "rename", "i": 1}
        assert encode_payload(record) == \
            encode_payload({"op": "rename", "i": 1, "tag": "z"})
        assert b" " not in encode_payload(record)

    def test_batch_record_round_trips_ops(self):
        ops = [
            BatchRename(4, "new"),
            BatchInsert(1, [XmlNode("frag", [XmlNode("leaf")])]),
            BatchAppend(0, [XmlNode("tail")]),
            BatchDelete(6),
        ]
        record = batch_record(ops)
        assert record["op"] == "batch"
        decoded = batch_ops_from_record(record)
        assert [type(op) for op in decoded] == [type(op) for op in ops]
        assert decoded[0].index == 4 and decoded[0].new_tag == "new"
        assert decoded[3].index == 6
        assert serialize_xml(decoded[1].content[0]) == \
            serialize_xml(ops[1].content[0])

    def test_batch_record_rejects_unknown_ops(self):
        with pytest.raises(WalRecordError, match="cannot log"):
            batch_record([object()])
        with pytest.raises(WalRecordError, match="unknown batch op"):
            batch_ops_from_record({"op": "batch",
                                   "ops": [{"op": "mystery"}]})
