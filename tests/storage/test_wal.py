"""WAL framing, scanning, torn-tail truncation, segmented chains,
append retry, compaction, and record codecs."""

import errno
import os
import struct

import pytest

from repro.storage.faults import FaultyIO, RetryPolicy
from repro.storage.wal import (
    WAL_MAGIC,
    SegmentedWal,
    WalRecordError,
    WalWriteError,
    WriteAheadLog,
    append_record,
    batch_ops_from_record,
    batch_record,
    compact_generation,
    compact_path,
    content_from_record,
    delete_record,
    encode_payload,
    insert_record,
    list_segments,
    rename_record,
    scan_wal,
    scan_wal_report,
    segment_path,
)
from repro.trees.unranked import XmlNode
from repro.trees.xml_io import serialize_xml
from repro.updates.batch import (
    BatchAppend,
    BatchDelete,
    BatchInsert,
    BatchRename,
)

RECORDS = [
    rename_record(3, "status"),
    insert_record(1, [XmlNode("x", [XmlNode("y")])]),
    delete_record(7),
]


def wal_file(tmp_path, name="wal"):
    return str(tmp_path / name)


class TestFraming:
    def test_create_writes_magic_only(self, tmp_path):
        path = wal_file(tmp_path)
        wal = WriteAheadLog(path, create=True)
        assert wal.size == len(WAL_MAGIC)
        wal.close()
        with open(path, "rb") as handle:
            assert handle.read() == WAL_MAGIC
        assert scan_wal(path) == ([], len(WAL_MAGIC), False)

    def test_append_then_reopen_round_trips(self, tmp_path):
        path = wal_file(tmp_path)
        wal = WriteAheadLog(path, create=True)
        offsets = [wal.append(record) for record in RECORDS]
        assert offsets[0] == len(WAL_MAGIC)
        assert offsets == sorted(offsets)
        assert wal.size == os.path.getsize(path)
        wal.close()

        reopened = WriteAheadLog(path)
        assert reopened.recovered_records == RECORDS
        assert not reopened.truncated_tail
        assert reopened.size == wal.size
        reopened.close()

    def test_append_after_reopen_continues_log(self, tmp_path):
        path = wal_file(tmp_path)
        wal = WriteAheadLog(path, create=True)
        wal.append(RECORDS[0])
        wal.close()
        wal = WriteAheadLog(path)
        wal.append(RECORDS[1])
        wal.close()
        records, _, torn = scan_wal(path)
        assert records == RECORDS[:2]
        assert not torn

    def test_not_a_wal_raises(self, tmp_path):
        path = wal_file(tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"definitely not a log")
        with pytest.raises(WalRecordError, match="bad magic"):
            scan_wal(path)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            WriteAheadLog(wal_file(tmp_path, "absent"))


class TestTornTails:
    def make_log(self, tmp_path):
        path = wal_file(tmp_path)
        wal = WriteAheadLog(path, create=True)
        for record in RECORDS:
            wal.append(record)
        wal.close()
        return path, wal.size

    def test_garbage_tail_is_truncated_on_open(self, tmp_path):
        path, valid = self.make_log(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"\x99" * 11)
        wal = WriteAheadLog(path)
        assert wal.recovered_records == RECORDS
        assert wal.truncated_tail
        assert wal.size == valid
        wal.close()
        assert os.path.getsize(path) == valid

    def test_half_written_record_is_truncated(self, tmp_path):
        path, valid = self.make_log(tmp_path)
        frame_tail = encode_payload(rename_record(9, "torn"))
        framed = struct.pack("<II", len(frame_tail), 0) + frame_tail
        with open(path, "ab") as handle:
            handle.write(framed[: len(framed) // 2])
        wal = WriteAheadLog(path)
        assert wal.recovered_records == RECORDS
        assert wal.truncated_tail
        assert wal.size == valid
        wal.close()

    def test_corrupt_payload_drops_everything_after_it(self, tmp_path):
        # Flip one byte inside the SECOND record's payload: the first
        # record survives; the corrupt one and the (valid-looking) third
        # are both dropped -- nothing beyond the first bad record can
        # have been acknowledged.
        path, _ = self.make_log(tmp_path)
        first = len(WAL_MAGIC) + 8 + len(encode_payload(RECORDS[0]))
        with open(path, "r+b") as handle:
            handle.seek(first + 8 + 2)
            byte = handle.read(1)
            handle.seek(first + 8 + 2)
            handle.write(bytes([byte[0] ^ 0xFF]))
        wal = WriteAheadLog(path)
        assert wal.recovered_records == RECORDS[:1]
        assert wal.truncated_tail
        assert wal.size == first
        wal.close()

    def test_giant_length_field_is_treated_as_torn(self, tmp_path):
        path, valid = self.make_log(tmp_path)
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", 1 << 30, 0) + b"xx")
        wal = WriteAheadLog(path)
        assert wal.recovered_records == RECORDS
        assert wal.size == valid
        wal.close()

    def test_rollback_cuts_the_tail_record(self, tmp_path):
        path = wal_file(tmp_path)
        wal = WriteAheadLog(path, create=True)
        wal.append(RECORDS[0])
        offset = wal.append(RECORDS[1])
        wal.rollback_to(offset)
        assert wal.size == offset
        wal.close()
        records, _, torn = scan_wal(path)
        assert records == RECORDS[:1]
        assert not torn

    def test_rollback_forward_is_rejected(self, tmp_path):
        path = wal_file(tmp_path)
        wal = WriteAheadLog(path, create=True)
        with pytest.raises(ValueError, match="roll forward"):
            wal.rollback_to(wal.size + 4)
        wal.close()


class TestScanReport:
    def test_clean_file_reports_spans(self, tmp_path):
        path = wal_file(tmp_path)
        wal = WriteAheadLog(path, create=True)
        for record in RECORDS:
            wal.append(record)
        wal.close()
        report = scan_wal_report(path)
        assert report.records == RECORDS
        assert not report.torn
        assert report.tail_reason is None
        assert report.tail_message is None
        assert report.spans[0][0] == len(WAL_MAGIC)
        assert report.valid == report.total == os.path.getsize(path)
        # Spans tile the file exactly.
        for (_, end), (start, _) in zip(report.spans, report.spans[1:]):
            assert end == start

    def test_tail_message_pins_path_offset_and_ordinal(self, tmp_path):
        # The operator-facing corruption description is a contract:
        # file path, byte offset of the first bad frame, and the
        # ordinal of the record that failed.
        path = wal_file(tmp_path)
        wal = WriteAheadLog(path, create=True)
        wal.append(RECORDS[0])
        valid = wal.size
        wal.close()
        with open(path, "ab") as handle:
            handle.write(b"\x07" * 3)
        report = scan_wal_report(path)
        assert report.torn
        assert report.tail_reason == "torn frame header"
        assert report.tail_message == (
            f"{path}: invalid WAL tail at byte offset {valid} "
            f"(record #1): torn frame header"
        )

    def test_tail_reasons_name_the_defect(self, tmp_path):
        path = wal_file(tmp_path)
        WriteAheadLog(path, create=True).close()
        payload = encode_payload(RECORDS[0])
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", len(payload), 0) + payload)
        assert scan_wal_report(path).tail_reason == \
            "payload checksum mismatch"

        path2 = wal_file(tmp_path, "wal2")
        WriteAheadLog(path2, create=True).close()
        with open(path2, "ab") as handle:
            handle.write(struct.pack("<II", 12, 0) + b"1234")
        assert scan_wal_report(path2).tail_reason == \
            "torn payload (4 of 12 bytes)"


class TestAppendRetry:
    def nosleep(self):
        delays = []
        return delays, RetryPolicy(attempts=3, base_delay=0.5,
                                   max_delay=2.0, multiplier=2.0,
                                   sleep=delays.append)

    def test_transient_fsync_error_is_retried(self, tmp_path):
        path = wal_file(tmp_path)
        delays, retry = self.nosleep()
        io = FaultyIO(error_label="wal:append:before-fsync",
                      error_errno=errno.EIO, error_count=1)
        wal = WriteAheadLog(path, io=io, create=True, retry=retry)
        offset = wal.append(RECORDS[0])
        assert offset == len(WAL_MAGIC)
        wal.close()
        # The backoff clock was consulted once, never the real one.
        assert delays == [0.5]
        assert io.errors_injected == \
            [("wal:append:before-fsync", errno.EIO)]
        records, _, torn = scan_wal(path)
        assert records == RECORDS[:1]
        assert not torn

    def test_mid_write_error_restores_tail_before_rewrite(self, tmp_path):
        path = wal_file(tmp_path)
        _, retry = self.nosleep()
        io = FaultyIO(error_label="wal:append:mid-write", error_count=1)
        wal = WriteAheadLog(path, io=io, create=True, retry=retry)
        wal.append(RECORDS[0])
        wal.close()
        # No torn prefix survives between the retries: the file holds
        # exactly the one clean record.
        report = scan_wal_report(path)
        assert report.records == RECORDS[:1]
        assert not report.torn

    def test_exhausted_retries_raise_walwriteerror(self, tmp_path):
        path = wal_file(tmp_path)
        delays, retry = self.nosleep()
        io = FaultyIO(error_label="wal:append:before-fsync",
                      error_errno=errno.ENOSPC, error_count=99)
        wal = WriteAheadLog(path, io=io, create=True, retry=retry)
        with pytest.raises(WalWriteError) as info:
            wal.append(RECORDS[0])
        assert info.value.errno == errno.ENOSPC
        assert info.value.tail_intact
        assert "after 3 attempts" in str(info.value)
        assert f"{path}: append failed at byte offset " \
            f"{len(WAL_MAGIC)} (record #0)" in str(info.value)
        assert delays == [0.5, 1.0]
        wal.close()
        # The log tail is intact: the failed record left no trace.
        records, valid, torn = scan_wal(path)
        assert records == [] and valid == len(WAL_MAGIC) and not torn

    def test_create_failure_raises_walwriteerror(self, tmp_path):
        _, retry = self.nosleep()
        io = FaultyIO(error_label="wal:create:before-write",
                      error_count=99)
        with pytest.raises(WalWriteError, match="could not create"):
            WriteAheadLog(wal_file(tmp_path), io=io, create=True,
                          retry=retry)


class TestSegmentedWal:
    def test_segment_zero_keeps_the_unsegmented_name(self, tmp_path):
        assert segment_path(str(tmp_path), 3, 0).endswith("wal.000003")
        assert segment_path(str(tmp_path), 3, 2).endswith(
            "wal.000003.000002")
        assert compact_path(str(tmp_path), 3).endswith(
            "wal.000003.compact")

    def test_appends_rotate_on_the_size_bound(self, tmp_path):
        directory = str(tmp_path)
        wal = SegmentedWal(directory, 0, create=True, segment_bytes=1)
        tokens = [wal.append(record) for record in RECORDS]
        # segment_bytes=1: every append after the first rotates.
        assert wal.rotations == 2
        assert wal.segment_count == 3
        assert [token[0] for token in tokens] == [0, 1, 2]
        assert wal.record_count == 3
        assert list_segments(directory, 0) == [0, 1, 2]
        wal.close()

    def test_chain_reopens_with_records_in_order(self, tmp_path):
        directory = str(tmp_path)
        wal = SegmentedWal(directory, 0, create=True, segment_bytes=1)
        for record in RECORDS:
            wal.append(record)
        wal.close()
        reopened = SegmentedWal(directory, 0, segment_bytes=1)
        assert reopened.recovered_records == RECORDS
        assert reopened.active_segment == 2
        assert not reopened.truncated_tail
        reopened.close()

    def test_single_segment_store_opens_as_chain_of_one(self, tmp_path):
        # Backward compatibility: a pre-segmentation wal.{g} file.
        directory = str(tmp_path)
        single = WriteAheadLog(segment_path(directory, 0, 0), create=True)
        single.append(RECORDS[0])
        single.close()
        wal = SegmentedWal(directory, 0)
        assert wal.segment_count == 1
        assert wal.recovered_records == RECORDS[:1]
        wal.close()

    def test_chain_gap_is_hard_corruption(self, tmp_path):
        directory = str(tmp_path)
        wal = SegmentedWal(directory, 0, create=True, segment_bytes=1)
        for record in RECORDS:
            wal.append(record)
        wal.close()
        os.remove(segment_path(directory, 0, 1))
        with pytest.raises(WalRecordError, match="chain has gaps"):
            SegmentedWal(directory, 0)

    def test_torn_nonfinal_segment_is_hard_corruption(self, tmp_path):
        directory = str(tmp_path)
        wal = SegmentedWal(directory, 0, create=True, segment_bytes=1)
        for record in RECORDS:
            wal.append(record)
        wal.close()
        with open(segment_path(directory, 0, 0), "ab") as handle:
            handle.write(b"\x99" * 5)
        with pytest.raises(WalRecordError,
                           match="non-final WAL segment is corrupt"):
            SegmentedWal(directory, 0)

    def test_torn_final_segment_is_truncated(self, tmp_path):
        directory = str(tmp_path)
        wal = SegmentedWal(directory, 0, create=True, segment_bytes=1)
        for record in RECORDS:
            wal.append(record)
        wal.close()
        with open(segment_path(directory, 0, 2), "ab") as handle:
            handle.write(b"\x99" * 5)
        reopened = SegmentedWal(directory, 0, segment_bytes=1)
        assert reopened.recovered_records == RECORDS
        assert reopened.truncated_tail
        assert reopened.tail_error is not None
        reopened.close()

    def test_rotation_crash_artifact_is_retired(self, tmp_path):
        # A crash between rotation's file creation and its header
        # fsync leaves a final segment with no/partial magic: it holds
        # nothing acknowledged, so open drops it and resumes on the
        # sealed predecessor.
        directory = str(tmp_path)
        wal = SegmentedWal(directory, 0, create=True, segment_bytes=1)
        for record in RECORDS:
            wal.append(record)
        wal.close()
        artifact = segment_path(directory, 0, 3)
        with open(artifact, "wb") as handle:
            handle.write(WAL_MAGIC[:3])
        reopened = SegmentedWal(directory, 0, segment_bytes=1)
        assert reopened.recovered_records == RECORDS
        assert reopened.active_segment == 2
        assert not os.path.exists(artifact)
        reopened.close()

    def test_rollback_token_must_be_active(self, tmp_path):
        directory = str(tmp_path)
        wal = SegmentedWal(directory, 0, create=True, segment_bytes=1)
        stale = wal.append(RECORDS[0])
        wal.append(RECORDS[1])  # rotates: token 0 is now sealed
        with pytest.raises(ValueError, match="not in the active segment"):
            wal.rollback_to(stale)
        wal.close()

    def test_rollback_cuts_only_the_tail_record(self, tmp_path):
        directory = str(tmp_path)
        wal = SegmentedWal(directory, 0, create=True, segment_bytes=1)
        wal.append(RECORDS[0])
        token = wal.append(RECORDS[1])
        wal.rollback_to(token)
        assert wal.record_count == 1
        wal.close()
        reopened = SegmentedWal(directory, 0, segment_bytes=1)
        assert reopened.recovered_records == RECORDS[:1]
        reopened.close()

    def test_drop_last_record_reaches_into_sealed_segments(self, tmp_path):
        directory = str(tmp_path)
        wal = SegmentedWal(directory, 0, create=True, segment_bytes=1)
        for record in RECORDS:
            wal.append(record)
        wal.close()
        reopened = SegmentedWal(directory, 0, segment_bytes=1)
        reopened.drop_last_record()
        assert reopened.recovered_records == RECORDS[:2]
        assert reopened.record_count == 2
        reopened.close()

    def test_record_source_names_the_owning_segment(self, tmp_path):
        directory = str(tmp_path)
        wal = SegmentedWal(directory, 0, create=True, segment_bytes=1)
        for record in RECORDS:
            wal.append(record)
        path, offset = wal.record_source(2)
        assert path == segment_path(directory, 0, 2)
        assert offset == len(WAL_MAGIC)
        wal.close()

    def test_failed_rotation_keeps_appending_to_the_old_segment(
            self, tmp_path):
        directory = str(tmp_path)
        retry = RetryPolicy(attempts=2, sleep=lambda _: None)
        io = FaultyIO(error_label="wal:create:before-write",
                      error_count=99)
        io.disarm()
        wal = SegmentedWal(directory, 0, io=io, create=True,
                           segment_bytes=1, retry=retry)
        wal.append(RECORDS[0])
        io.arm()
        with pytest.raises(WalWriteError):
            wal.append(RECORDS[1])
        io.disarm()
        # The chain healed onto the sealed-but-still-final segment:
        # appends keep working and nothing was lost.
        wal.append(RECORDS[2])
        wal.close()
        reopened = SegmentedWal(directory, 0, segment_bytes=1)
        assert reopened.recovered_records == [RECORDS[0], RECORDS[2]]
        reopened.close()


class TestCompaction:
    def test_chain_collapses_to_one_compact_file(self, tmp_path):
        directory = str(tmp_path)
        wal = SegmentedWal(directory, 0, create=True, segment_bytes=1)
        for record in RECORDS:
            wal.append(record)
        wal.close()
        target = compact_generation(directory, 0)
        assert target == compact_path(directory, 0)
        assert list_segments(directory, 0) == []
        compacted = WriteAheadLog(target)
        assert compacted.recovered_records == RECORDS
        assert not compacted.truncated_tail
        compacted.close()

    def test_compaction_drops_torn_tails(self, tmp_path):
        directory = str(tmp_path)
        wal = SegmentedWal(directory, 0, create=True, segment_bytes=1)
        for record in RECORDS:
            wal.append(record)
        wal.close()
        with open(segment_path(directory, 0, 2), "ab") as handle:
            handle.write(b"\x99" * 7)
        target = compact_generation(directory, 0)
        records, _, torn = scan_wal(target)
        assert records == RECORDS
        assert not torn

    def test_compacting_nothing_returns_none(self, tmp_path):
        assert compact_generation(str(tmp_path), 9) is None


class TestRecordCodecs:
    def test_content_round_trips_as_xml(self):
        content = [XmlNode("a", [XmlNode("b"), XmlNode("c")]), XmlNode("d")]
        record = insert_record(2, content)
        decoded = content_from_record(record["xml"])
        assert [serialize_xml(node) for node in decoded] == \
            [serialize_xml(node) for node in content]

    def test_payload_encoding_is_canonical(self):
        record = {"tag": "z", "op": "rename", "i": 1}
        assert encode_payload(record) == \
            encode_payload({"op": "rename", "i": 1, "tag": "z"})
        assert b" " not in encode_payload(record)

    def test_batch_record_round_trips_ops(self):
        ops = [
            BatchRename(4, "new"),
            BatchInsert(1, [XmlNode("frag", [XmlNode("leaf")])]),
            BatchAppend(0, [XmlNode("tail")]),
            BatchDelete(6),
        ]
        record = batch_record(ops)
        assert record["op"] == "batch"
        decoded = batch_ops_from_record(record)
        assert [type(op) for op in decoded] == [type(op) for op in ops]
        assert decoded[0].index == 4 and decoded[0].new_tag == "new"
        assert decoded[3].index == 6
        assert serialize_xml(decoded[1].content[0]) == \
            serialize_xml(ops[1].content[0])

    def test_batch_record_rejects_unknown_ops(self):
        with pytest.raises(WalRecordError, match="cannot log"):
            batch_record([object()])
        with pytest.raises(WalRecordError, match="unknown batch op"):
            batch_ops_from_record({"op": "batch",
                                   "ops": [{"op": "mystery"}]})
