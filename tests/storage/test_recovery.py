"""Manifest handling, WAL replay, and degraded (previous-generation)
recovery."""

import json
import os

import pytest

from repro.api import CompressedXml
from repro.storage.durable import DurableXml
from repro.storage.recovery import (
    MANIFEST_NAME,
    RecoveryError,
    StoreLayout,
    read_manifest,
    recover,
    write_manifest,
)
from repro.storage.wal import (
    WriteAheadLog,
    delete_record,
    rename_record,
)
from repro.trees.unranked import XmlNode

XML = "<log>" + "<entry><ip/><status/></entry>" * 5 + "</log>"


def make_store(tmp_path, name="store", **kwargs):
    directory = str(tmp_path / name)
    return directory, DurableXml.from_xml(directory, XML, **kwargs)


def corrupt(path, offset=25):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


class TestManifest:
    def test_round_trip(self, tmp_path):
        write_manifest(str(tmp_path), 7)
        assert read_manifest(str(tmp_path)) == 7
        write_manifest(str(tmp_path), 8)
        assert read_manifest(str(tmp_path)) == 8
        assert not os.path.exists(
            os.path.join(str(tmp_path), MANIFEST_NAME + ".tmp"))

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(RecoveryError, match="not a durable store"):
            read_manifest(str(tmp_path))

    def test_corrupt_manifest(self, tmp_path):
        path = os.path.join(str(tmp_path), MANIFEST_NAME)
        with open(path, "w") as handle:
            handle.write("{oops")
        with pytest.raises(RecoveryError, match="corrupt manifest"):
            read_manifest(str(tmp_path))

    def test_foreign_manifest(self, tmp_path):
        path = os.path.join(str(tmp_path), MANIFEST_NAME)
        with open(path, "w") as handle:
            json.dump({"format": "something-else", "generation": 1}, handle)
        with pytest.raises(RecoveryError, match="unrecognized"):
            read_manifest(str(tmp_path))

    def test_non_integer_generation(self, tmp_path):
        path = os.path.join(str(tmp_path), MANIFEST_NAME)
        with open(path, "w") as handle:
            json.dump({"format": "repro-store", "generation": "3"}, handle)
        with pytest.raises(RecoveryError, match="unrecognized"):
            read_manifest(str(tmp_path))


class TestReplay:
    def test_recover_replays_the_wal_tail(self, tmp_path):
        directory, store = make_store(tmp_path)
        store.rename(1, "record")
        store.append_child(0, XmlNode("extra"))
        expected = store.to_xml()
        store.close()

        result = recover(directory)
        assert result.replayed == 2
        assert not result.degraded
        assert not result.dropped_tail_record
        assert result.generation == 0
        assert result.doc.to_xml() == expected
        result.wal.close()

    def test_failing_last_record_is_dropped(self, tmp_path):
        # A record can be durable yet unacknowledged: the process died
        # between the fsync and the in-memory apply.  If the apply fails
        # on replay, recovery drops it like a torn tail.
        directory, store = make_store(tmp_path)
        store.rename(1, "record")
        expected = store.to_xml()
        store.close()
        layout = StoreLayout(directory)
        wal = WriteAheadLog(layout.wal_path(0))
        wal.append(rename_record(10 ** 6, "nope"))
        wal.close()

        result = recover(directory)
        assert result.dropped_tail_record
        assert result.replayed == 1
        assert result.doc.to_xml() == expected
        result.wal.close()
        # ... and the drop truncated the log: a second open is clean.
        again = recover(directory)
        assert not again.dropped_tail_record
        assert again.doc.to_xml() == expected
        again.wal.close()

    def test_failing_middle_record_is_fatal(self, tmp_path):
        directory, store = make_store(tmp_path)
        store.rename(1, "record")
        store.close()
        layout = StoreLayout(directory)
        wal = WriteAheadLog(layout.wal_path(0))
        wal.append(delete_record(10 ** 6))
        wal.append(rename_record(2, "fine"))
        wal.close()

        with pytest.raises(RecoveryError, match="failed to apply"):
            recover(directory)

    def test_missing_live_wal_is_fatal(self, tmp_path):
        directory, store = make_store(tmp_path)
        store.close()
        os.remove(StoreLayout(directory).wal_path(0))
        with pytest.raises(RecoveryError, match="missing"):
            recover(directory)

    def test_doc_kwargs_reach_the_document(self, tmp_path):
        directory, store = make_store(tmp_path)
        store.close()
        result = recover(directory, auto_recompress_factor=2.5)
        assert result.doc._auto_factor == 2.5
        result.wal.close()


class TestDegradedRecovery:
    def checkpointed_store(self, tmp_path):
        directory, store = make_store(tmp_path)
        store.rename(1, "record")
        store.append_child(0, XmlNode("extra", [XmlNode("x")]))
        store.checkpoint()
        store.delete(4)
        expected = store.to_xml()
        store.close()
        assert read_manifest(directory) == 1
        return directory, expected

    def test_corrupt_newest_snapshot_degrades(self, tmp_path):
        directory, expected = self.checkpointed_store(tmp_path)
        corrupt(StoreLayout(directory).snapshot_path(1))

        result = recover(directory)
        assert result.degraded
        # Generation 0's WAL (2 records) replays in full, then the live
        # generation-1 WAL (1 record) on top.
        assert result.replayed == 3
        assert result.doc.to_xml() == expected
        result.wal.close()

    def test_missing_newest_snapshot_degrades(self, tmp_path):
        directory, expected = self.checkpointed_store(tmp_path)
        os.remove(StoreLayout(directory).snapshot_path(1))
        result = recover(directory)
        assert result.degraded
        assert result.doc.to_xml() == expected
        result.wal.close()

    def test_degraded_with_missing_live_wal(self, tmp_path):
        # A dying disk can lose both the newest snapshot and its WAL;
        # the previous generation alone must still reconstruct the last
        # checkpointed state.
        directory, store = make_store(tmp_path)
        store.rename(1, "record")
        store.checkpoint()
        checkpointed = store.to_xml()
        store.close()
        layout = StoreLayout(directory)
        os.remove(layout.snapshot_path(1))
        os.remove(layout.wal_path(1))

        result = recover(directory)
        assert result.degraded
        assert result.doc.to_xml() == checkpointed
        assert os.path.exists(layout.wal_path(1))
        result.wal.close()

    def test_both_generations_corrupt_is_fatal(self, tmp_path):
        directory, _ = self.checkpointed_store(tmp_path)
        layout = StoreLayout(directory)
        corrupt(layout.snapshot_path(0))
        corrupt(layout.snapshot_path(1))
        with pytest.raises(RecoveryError, match="both unreadable"):
            recover(directory)

    def test_generation_zero_corrupt_is_fatal(self, tmp_path):
        directory, store = make_store(tmp_path)
        store.close()
        corrupt(StoreLayout(directory).snapshot_path(0))
        with pytest.raises(RecoveryError,
                           match="no previous generation"):
            recover(directory)

    def test_open_after_degradation_recheckpoints(self, tmp_path):
        directory, expected = self.checkpointed_store(tmp_path)
        layout = StoreLayout(directory)
        corrupt(layout.snapshot_path(1))

        with DurableXml.open(directory) as store:
            assert store.last_recovery.degraded
            # The facade immediately re-established a healthy newest
            # image: a fresh generation whose snapshot is valid.
            assert store.generation == 2
            assert store.to_xml() == expected
        with DurableXml.open(directory) as store:
            assert not store.last_recovery.degraded
            assert store.to_xml() == expected
