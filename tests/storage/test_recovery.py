"""Manifest handling, WAL replay, and degraded (previous-generation)
recovery."""

import json
import os

import pytest

from repro.api import CompressedXml
from repro.storage.durable import DurableXml
from repro.storage.recovery import (
    MANIFEST_NAME,
    RecoveryError,
    StoreLayout,
    read_manifest,
    recover,
    write_manifest,
)
from repro.storage.wal import (
    WAL_MAGIC,
    WriteAheadLog,
    delete_record,
    rename_record,
    scan_wal,
    segment_path,
)
from repro.trees.unranked import XmlNode

XML = "<log>" + "<entry><ip/><status/></entry>" * 5 + "</log>"


def make_store(tmp_path, name="store", **kwargs):
    directory = str(tmp_path / name)
    return directory, DurableXml.from_xml(directory, XML, **kwargs)


def corrupt(path, offset=25):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


class TestManifest:
    def test_round_trip(self, tmp_path):
        write_manifest(str(tmp_path), 7)
        assert read_manifest(str(tmp_path)) == 7
        write_manifest(str(tmp_path), 8)
        assert read_manifest(str(tmp_path)) == 8
        assert not os.path.exists(
            os.path.join(str(tmp_path), MANIFEST_NAME + ".tmp"))

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(RecoveryError, match="not a durable store"):
            read_manifest(str(tmp_path))

    def test_corrupt_manifest(self, tmp_path):
        path = os.path.join(str(tmp_path), MANIFEST_NAME)
        with open(path, "w") as handle:
            handle.write("{oops")
        with pytest.raises(RecoveryError, match="corrupt manifest"):
            read_manifest(str(tmp_path))

    def test_foreign_manifest(self, tmp_path):
        path = os.path.join(str(tmp_path), MANIFEST_NAME)
        with open(path, "w") as handle:
            json.dump({"format": "something-else", "generation": 1}, handle)
        with pytest.raises(RecoveryError, match="unrecognized"):
            read_manifest(str(tmp_path))

    def test_non_integer_generation(self, tmp_path):
        path = os.path.join(str(tmp_path), MANIFEST_NAME)
        with open(path, "w") as handle:
            json.dump({"format": "repro-store", "generation": "3"}, handle)
        with pytest.raises(RecoveryError, match="unrecognized"):
            read_manifest(str(tmp_path))


class TestReplay:
    def test_recover_replays_the_wal_tail(self, tmp_path):
        directory, store = make_store(tmp_path)
        store.rename(1, "record")
        store.append_child(0, XmlNode("extra"))
        expected = store.to_xml()
        store.close()

        result = recover(directory)
        assert result.replayed == 2
        assert not result.degraded
        assert not result.dropped_tail_record
        assert result.generation == 0
        assert result.doc.to_xml() == expected
        result.wal.close()

    def test_failing_last_record_is_dropped(self, tmp_path):
        # A record can be durable yet unacknowledged: the process died
        # between the fsync and the in-memory apply.  If the apply fails
        # on replay, recovery drops it like a torn tail.
        directory, store = make_store(tmp_path)
        store.rename(1, "record")
        expected = store.to_xml()
        store.close()
        layout = StoreLayout(directory)
        wal = WriteAheadLog(layout.wal_path(0))
        wal.append(rename_record(10 ** 6, "nope"))
        wal.close()

        result = recover(directory)
        assert result.dropped_tail_record
        assert result.replayed == 1
        assert result.doc.to_xml() == expected
        result.wal.close()
        # ... and the drop truncated the log: a second open is clean.
        again = recover(directory)
        assert not again.dropped_tail_record
        assert again.doc.to_xml() == expected
        again.wal.close()

    def test_failing_middle_record_is_fatal(self, tmp_path):
        directory, store = make_store(tmp_path)
        store.rename(1, "record")
        store.close()
        layout = StoreLayout(directory)
        wal = WriteAheadLog(layout.wal_path(0))
        wal.append(delete_record(10 ** 6))
        wal.append(rename_record(2, "fine"))
        wal.close()

        with pytest.raises(RecoveryError, match="failed to apply"):
            recover(directory)

    def test_missing_live_wal_is_fatal(self, tmp_path):
        directory, store = make_store(tmp_path)
        store.close()
        os.remove(StoreLayout(directory).wal_path(0))
        with pytest.raises(RecoveryError, match="missing"):
            recover(directory)

    def test_doc_kwargs_reach_the_document(self, tmp_path):
        directory, store = make_store(tmp_path)
        store.close()
        result = recover(directory, auto_recompress_factor=2.5)
        assert result.doc._auto_factor == 2.5
        result.wal.close()


class TestErrorContext:
    """Corruption errors carry file path, byte offset, and record
    ordinal -- the formats are a contract operators and tests pin."""

    def test_replay_failure_names_path_offset_and_ordinal(self, tmp_path):
        directory, store = make_store(tmp_path)
        store.close()
        layout = StoreLayout(directory)
        wal = WriteAheadLog(layout.wal_path(0))
        offset = wal.append(delete_record(10 ** 6))
        wal.append(rename_record(2, "fine"))
        wal.close()

        with pytest.raises(RecoveryError) as info:
            recover(directory)
        message = str(info.value)
        assert message.startswith(
            f"{layout.wal_path(0)}: WAL record #0 at byte offset "
            f"{offset} ('delete') failed to apply during replay: "
        )

    def test_replay_failure_in_a_later_segment_names_it(self, tmp_path):
        directory, store = make_store(tmp_path, wal_segment_bytes=1)
        store.rename(1, "record")
        store.close()
        second = segment_path(directory, 0, 1)
        wal = WriteAheadLog(second, create=True)
        wal.append(delete_record(10 ** 6))
        wal.append(rename_record(2, "fine"))
        wal.close()

        with pytest.raises(RecoveryError) as info:
            recover(directory, wal_segment_bytes=1)
        assert f"{second}: WAL record #1 at byte offset " \
            f"{len(WAL_MAGIC)} ('delete')" in str(info.value)

    def test_bad_magic_message_is_stable(self, tmp_path):
        path = str(tmp_path / "notawal")
        with open(path, "wb") as handle:
            handle.write(b"garbage here")
        with pytest.raises(Exception) as info:
            WriteAheadLog(path)
        assert str(info.value) == f"{path}: not a WAL file (bad magic)"

    def test_corrupt_live_chain_reports_the_generation(self, tmp_path):
        directory, store = make_store(tmp_path, wal_segment_bytes=1)
        store.rename(1, "a")
        store.rename(2, "b")
        store.close()
        # Tear a *non-final* segment: hard corruption of the chain.
        with open(segment_path(directory, 0, 0), "ab") as handle:
            handle.write(b"\x99" * 5)
        with pytest.raises(RecoveryError) as info:
            recover(directory, wal_segment_bytes=1)
        message = str(info.value)
        assert message.startswith(
            f"{directory}: live WAL chain for generation 0 is corrupt: "
            "non-final WAL segment is corrupt: "
        )
        assert "invalid WAL tail at byte offset" in message


class TestChainRecovery:
    def test_live_chain_replays_across_segments(self, tmp_path):
        directory, store = make_store(tmp_path, wal_segment_bytes=1,
                                      checkpoint_wal_bytes=1 << 30)
        for index, tag in enumerate(("a", "b", "c", "d"), start=1):
            store.rename(index, tag)
        expected = store.to_xml()
        assert store.wal_segment_count > 1
        store.close()

        result = recover(directory, wal_segment_bytes=1)
        assert result.replayed == 4
        assert result.doc.to_xml() == expected
        assert result.wal.segment_count > 1
        result.wal.close()

    def test_compact_fallback_serves_degraded_recovery(self, tmp_path):
        # Rotations, then a checkpoint: the old chain is compacted.
        # Corrupting the new snapshot must recover through the
        # compacted fallback log.
        directory, store = make_store(tmp_path, wal_segment_bytes=1,
                                      checkpoint_wal_bytes=1 << 30)
        for index, tag in enumerate(("a", "b", "c"), start=1):
            store.rename(index, tag)
        store.checkpoint()
        store.rename(4, "live")
        expected = store.to_xml()
        store.close()
        layout = StoreLayout(directory)
        assert os.path.exists(layout.compact_path(0))
        assert layout.wal_segments(0) == []
        corrupt(layout.snapshot_path(1))

        result = recover(directory, wal_segment_bytes=1)
        assert result.degraded
        assert result.replayed == 4  # 3 compacted + 1 live
        assert result.doc.to_xml() == expected
        result.wal.close()

    def test_corrupt_fallback_log_is_fatal_with_context(self, tmp_path):
        directory, store = make_store(tmp_path, wal_segment_bytes=1,
                                      checkpoint_wal_bytes=1 << 30)
        store.rename(1, "a")
        store.rename(2, "b")
        store.checkpoint()
        store.close()
        layout = StoreLayout(directory)
        corrupt(layout.snapshot_path(1))
        # Replace the compacted fallback with a chain whose non-final
        # segment is torn.
        os.remove(layout.compact_path(0))
        wal = WriteAheadLog(layout.wal_path(0), create=True)
        wal.append(rename_record(1, "a"))
        wal.close()
        second = segment_path(directory, 0, 1)
        WriteAheadLog(second, create=True).close()
        with open(layout.wal_path(0), "ab") as handle:
            handle.write(b"\x99" * 5)

        with pytest.raises(RecoveryError) as info:
            recover(directory, wal_segment_bytes=1)
        assert str(info.value).startswith(
            f"{directory}: generation 0 WAL needed for degraded "
            f"recovery is corrupt: "
        )

    def test_checkpoint_compacts_and_drops_old_chain(self, tmp_path):
        directory, store = make_store(tmp_path, wal_segment_bytes=1,
                                      checkpoint_wal_bytes=1 << 30)
        store.rename(1, "a")
        store.rename(2, "b")
        store.checkpoint()
        store.close()
        layout = StoreLayout(directory)
        records, _, torn = scan_wal(layout.compact_path(0))
        assert [r["op"] for r in records] == ["rename", "rename"]
        assert not torn
        assert layout.wal_segments(0) == []
        # Next checkpoint retires the compacted generation entirely.
        with DurableXml.open(directory,
                             wal_segment_bytes=1) as store:
            store.rename(3, "c")
            store.checkpoint()
        assert layout.wal_files(0) == []


class TestDegradedRecovery:
    def checkpointed_store(self, tmp_path):
        directory, store = make_store(tmp_path)
        store.rename(1, "record")
        store.append_child(0, XmlNode("extra", [XmlNode("x")]))
        store.checkpoint()
        store.delete(4)
        expected = store.to_xml()
        store.close()
        assert read_manifest(directory) == 1
        return directory, expected

    def test_corrupt_newest_snapshot_degrades(self, tmp_path):
        directory, expected = self.checkpointed_store(tmp_path)
        corrupt(StoreLayout(directory).snapshot_path(1))

        result = recover(directory)
        assert result.degraded
        # Generation 0's WAL (2 records) replays in full, then the live
        # generation-1 WAL (1 record) on top.
        assert result.replayed == 3
        assert result.doc.to_xml() == expected
        result.wal.close()

    def test_missing_newest_snapshot_degrades(self, tmp_path):
        directory, expected = self.checkpointed_store(tmp_path)
        os.remove(StoreLayout(directory).snapshot_path(1))
        result = recover(directory)
        assert result.degraded
        assert result.doc.to_xml() == expected
        result.wal.close()

    def test_degraded_with_missing_live_wal(self, tmp_path):
        # A dying disk can lose both the newest snapshot and its WAL;
        # the previous generation alone must still reconstruct the last
        # checkpointed state.
        directory, store = make_store(tmp_path)
        store.rename(1, "record")
        store.checkpoint()
        checkpointed = store.to_xml()
        store.close()
        layout = StoreLayout(directory)
        os.remove(layout.snapshot_path(1))
        os.remove(layout.wal_path(1))

        result = recover(directory)
        assert result.degraded
        assert result.doc.to_xml() == checkpointed
        assert os.path.exists(layout.wal_path(1))
        result.wal.close()

    def test_both_generations_corrupt_is_fatal(self, tmp_path):
        directory, _ = self.checkpointed_store(tmp_path)
        layout = StoreLayout(directory)
        corrupt(layout.snapshot_path(0))
        corrupt(layout.snapshot_path(1))
        with pytest.raises(RecoveryError, match="both unreadable"):
            recover(directory)

    def test_generation_zero_corrupt_is_fatal(self, tmp_path):
        directory, store = make_store(tmp_path)
        store.close()
        corrupt(StoreLayout(directory).snapshot_path(0))
        with pytest.raises(RecoveryError,
                           match="no previous generation"):
            recover(directory)

    def test_open_after_degradation_recheckpoints(self, tmp_path):
        directory, expected = self.checkpointed_store(tmp_path)
        layout = StoreLayout(directory)
        corrupt(layout.snapshot_path(1))

        with DurableXml.open(directory) as store:
            assert store.last_recovery.degraded
            # The facade immediately re-established a healthy newest
            # image: a fresh generation whose snapshot is valid.
            assert store.generation == 2
            assert store.to_xml() == expected
        with DurableXml.open(directory) as store:
            assert not store.last_recovery.degraded
            assert store.to_xml() == expected
