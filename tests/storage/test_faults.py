"""The fault-injection layer itself: scheduling modes, torn writes,
stay-dead semantics, and the crash-point registry."""

import pytest

from repro.storage.faults import (
    CRASH_POINTS,
    FaultyIO,
    SimulatedCrash,
    StorageIO,
)


class TestRegistry:
    def test_crash_points_are_unique_and_labeled(self):
        assert len(CRASH_POINTS) == len(set(CRASH_POINTS))
        assert all(label.count(":") == 2 for label in CRASH_POINTS)

    def test_every_protocol_site_is_covered(self):
        sites = {label.rsplit(":", 1)[0] for label in CRASH_POINTS}
        assert sites == {
            "wal:append", "wal:create", "wal:open", "wal:rollback",
            "snapshot:write", "snapshot:commit",
            "manifest:write", "manifest:commit",
            "checkpoint:clean",
        }

    def test_simulated_crash_is_not_an_exception(self):
        # Internal ``except Exception`` error handling must not be able
        # to swallow a kill.
        assert issubclass(SimulatedCrash, BaseException)
        assert not issubclass(SimulatedCrash, Exception)


class TestScheduling:
    def test_exactly_one_mode_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultyIO()
        with pytest.raises(ValueError, match="exactly one"):
            FaultyIO(crash_label="wal:append:before-write",
                     crash_invocation=3)

    def test_label_mode_crashes_at_nth_occurrence(self):
        io = FaultyIO(crash_label="site:after-write", occurrence=2)
        io.crash_point("site:after-write")
        io.crash_point("site:other")
        with pytest.raises(SimulatedCrash) as info:
            io.crash_point("site:after-write")
        assert info.value.label == "site:after-write"
        assert io.crashed
        assert io.occurrences["site:after-write"] == 2

    def test_invocation_mode_counts_every_label(self):
        io = FaultyIO(crash_invocation=3)
        io.crash_point("a:x")
        io.crash_point("b:y")
        with pytest.raises(SimulatedCrash) as info:
            io.crash_point("c:z")
        assert info.value.label == "c:z"

    def test_once_dead_stays_dead(self):
        io = FaultyIO(crash_invocation=1)
        with pytest.raises(SimulatedCrash):
            io.crash_point("first:hit")
        # The process is dead: every later primitive raises too, no
        # matter the label or how often it was scheduled.
        with pytest.raises(SimulatedCrash):
            io.crash_point("completely:different")

    def test_disarm_suspends_the_countdown(self, tmp_path):
        io = FaultyIO(crash_invocation=1)
        io.disarm()
        io.crash_point("setup:phase")
        assert io.occurrences == {}
        io.arm()
        with pytest.raises(SimulatedCrash):
            io.crash_point("armed:phase")


class TestTornWrites:
    def test_mid_write_leaves_a_torn_prefix(self, tmp_path):
        path = str(tmp_path / "file")
        io = FaultyIO(crash_label="site:mid-write", torn_fraction=0.5)
        payload = b"0123456789abcdef"
        with open(path, "wb") as handle:
            with pytest.raises(SimulatedCrash):
                io.write(handle, payload, "site")
        with open(path, "rb") as handle:
            data = handle.read()
        assert data == payload[: len(payload) // 2]

    def test_unscheduled_write_is_untouched(self, tmp_path):
        path = str(tmp_path / "file")
        io = FaultyIO(crash_label="other:mid-write")
        with open(path, "wb") as handle:
            io.write(handle, b"payload", "site")
        with open(path, "rb") as handle:
            assert handle.read() == b"payload"


class TestDefaultIO:
    def test_default_io_is_a_no_op_layer(self, tmp_path):
        io = StorageIO()
        io.crash_point("anything:goes")
        path = str(tmp_path / "file")
        with open(path, "wb") as handle:
            io.write(handle, b"data", "site")
            io.fsync(handle, "site")
        io.replace(path, path + ".2", "site")
        io.truncate(path + ".2", 2, "site")
        with open(path + ".2", "rb") as handle:
            assert handle.read() == b"da"
        io.remove(path + ".2", "site")
        io.remove(path + ".2", "site")  # second remove: tolerated
        io.fsync_dir(str(tmp_path))
