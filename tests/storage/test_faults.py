"""The fault-injection layer itself: scheduling modes, torn writes,
errno injection, retry backoff, stay-dead semantics, and the
crash-point registry."""

import errno

import pytest

from repro.storage.faults import (
    CRASH_POINTS,
    FaultyIO,
    RetryPolicy,
    SimulatedCrash,
    StorageIO,
)


class TestRegistry:
    def test_crash_points_are_unique_and_labeled(self):
        assert len(CRASH_POINTS) == len(set(CRASH_POINTS))
        assert all(label.count(":") == 2 for label in CRASH_POINTS)

    def test_every_protocol_site_is_covered(self):
        sites = {label.rsplit(":", 1)[0] for label in CRASH_POINTS}
        assert sites == {
            "wal:append", "wal:create", "wal:open", "wal:rollback",
            "wal:compact",
            "snapshot:write", "snapshot:commit",
            "manifest:write", "manifest:commit",
            "checkpoint:clean",
            "grammar:save",
        }

    def test_simulated_crash_is_not_an_exception(self):
        # Internal ``except Exception`` error handling must not be able
        # to swallow a kill.
        assert issubclass(SimulatedCrash, BaseException)
        assert not issubclass(SimulatedCrash, Exception)


class TestScheduling:
    def test_exactly_one_mode_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultyIO()
        with pytest.raises(ValueError, match="exactly one"):
            FaultyIO(crash_label="wal:append:before-write",
                     crash_invocation=3)

    def test_label_mode_crashes_at_nth_occurrence(self):
        io = FaultyIO(crash_label="site:after-write", occurrence=2)
        io.crash_point("site:after-write")
        io.crash_point("site:other")
        with pytest.raises(SimulatedCrash) as info:
            io.crash_point("site:after-write")
        assert info.value.label == "site:after-write"
        assert io.crashed
        assert io.occurrences["site:after-write"] == 2

    def test_invocation_mode_counts_every_label(self):
        io = FaultyIO(crash_invocation=3)
        io.crash_point("a:x")
        io.crash_point("b:y")
        with pytest.raises(SimulatedCrash) as info:
            io.crash_point("c:z")
        assert info.value.label == "c:z"

    def test_once_dead_stays_dead(self):
        io = FaultyIO(crash_invocation=1)
        with pytest.raises(SimulatedCrash):
            io.crash_point("first:hit")
        # The process is dead: every later primitive raises too, no
        # matter the label or how often it was scheduled.
        with pytest.raises(SimulatedCrash):
            io.crash_point("completely:different")

    def test_disarm_suspends_the_countdown(self, tmp_path):
        io = FaultyIO(crash_invocation=1)
        io.disarm()
        io.crash_point("setup:phase")
        assert io.occurrences == {}
        io.arm()
        with pytest.raises(SimulatedCrash):
            io.crash_point("armed:phase")


class TestTornWrites:
    def test_mid_write_leaves_a_torn_prefix(self, tmp_path):
        path = str(tmp_path / "file")
        io = FaultyIO(crash_label="site:mid-write", torn_fraction=0.5)
        payload = b"0123456789abcdef"
        with open(path, "wb") as handle:
            with pytest.raises(SimulatedCrash):
                io.write(handle, payload, "site")
        with open(path, "rb") as handle:
            data = handle.read()
        assert data == payload[: len(payload) // 2]

    def test_unscheduled_write_is_untouched(self, tmp_path):
        path = str(tmp_path / "file")
        io = FaultyIO(crash_label="other:mid-write")
        with open(path, "wb") as handle:
            io.write(handle, b"payload", "site")
        with open(path, "rb") as handle:
            assert handle.read() == b"payload"


class TestErrorScheduling:
    def test_transient_error_fails_then_recovers(self):
        io = FaultyIO(error_label="wal:append:before-fsync",
                      error_errno=errno.EIO, error_count=2)
        with pytest.raises(OSError) as info:
            io.crash_point("wal:append:before-fsync")
        assert info.value.errno == errno.EIO
        assert "[injected at wal:append:before-fsync]" in str(info.value)
        with pytest.raises(OSError):
            io.crash_point("wal:append:before-fsync")
        # The budget is spent: the site is healthy again.
        io.crash_point("wal:append:before-fsync")
        assert io.errors_injected == [
            ("wal:append:before-fsync", errno.EIO),
            ("wal:append:before-fsync", errno.EIO),
        ]

    def test_transient_error_hits_only_its_own_label(self):
        io = FaultyIO(error_label="wal:append:after-write", error_count=5)
        io.crash_point("manifest:commit:before-rename")  # untouched
        with pytest.raises(OSError):
            io.crash_point("wal:append:after-write")
        io.crash_point("snapshot:write:before-fsync")  # still untouched

    def test_persistent_error_fails_every_later_site(self):
        io = FaultyIO(error_label="wal:append:before-fsync",
                      error_errno=errno.ENOSPC, error_persistent=True)
        io.crash_point("snapshot:write:before-write")  # before trigger
        with pytest.raises(OSError) as info:
            io.crash_point("wal:append:before-fsync")
        assert info.value.errno == errno.ENOSPC
        # The device is gone: everything fails from here on.
        with pytest.raises(OSError):
            io.crash_point("manifest:commit:before-rename")

    def test_error_invocation_mode_counts_every_label(self):
        io = FaultyIO(error_invocation=3, error_errno=errno.EROFS)
        io.crash_point("a:b:x")
        io.crash_point("c:d:y")
        with pytest.raises(OSError) as info:
            io.crash_point("e:f:z")
        assert info.value.errno == errno.EROFS

    def test_error_occurrence_skips_early_hits(self):
        io = FaultyIO(error_label="wal:append:after-fsync",
                      error_occurrence=3)
        io.crash_point("wal:append:after-fsync")
        io.crash_point("wal:append:after-fsync")
        with pytest.raises(OSError):
            io.crash_point("wal:append:after-fsync")

    def test_mid_write_error_leaves_a_torn_prefix(self, tmp_path):
        path = str(tmp_path / "file")
        io = FaultyIO(error_label="site:mid-write", torn_fraction=0.25)
        payload = b"0123456789abcdef"
        with open(path, "wb") as handle:
            with pytest.raises(OSError):
                io.write(handle, payload, "site")
        with open(path, "rb") as handle:
            assert handle.read() == payload[:4]

    def test_crash_and_error_schedules_compose(self):
        # An error first, then a kill later -- the interleavings the
        # Hypothesis sweep draws.
        io = FaultyIO(error_invocation=1, error_count=1,
                      crash_invocation=3)
        with pytest.raises(OSError):
            io.crash_point("a:b:x")
        io.crash_point("c:d:y")
        with pytest.raises(SimulatedCrash):
            io.crash_point("e:f:z")

    def test_error_only_schedule_is_valid(self):
        io = FaultyIO(error_label="wal:append:before-write")
        assert not io.crashed


class TestRetryPolicy:
    def test_delays_are_exponential_and_capped(self):
        policy = RetryPolicy(attempts=5, base_delay=0.01, max_delay=0.05,
                             multiplier=2.0, sleep=lambda _: None)
        assert list(policy.delays()) == [0.01, 0.02, 0.04, 0.05]

    def test_single_attempt_never_sleeps(self):
        policy = RetryPolicy(attempts=1)
        assert list(policy.delays()) == []

    def test_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)

    def test_sleep_is_injectable(self):
        recorded = []
        policy = RetryPolicy(attempts=3, base_delay=1.0, max_delay=9.0,
                             multiplier=3.0, sleep=recorded.append)
        for delay in policy.delays():
            policy.sleep(delay)
        assert recorded == [1.0, 3.0]


class TestDefaultIO:
    def test_default_io_is_a_no_op_layer(self, tmp_path):
        io = StorageIO()
        io.crash_point("anything:goes")
        path = str(tmp_path / "file")
        with open(path, "wb") as handle:
            io.write(handle, b"data", "site")
            io.fsync(handle, "site")
        io.replace(path, path + ".2", "site")
        io.truncate(path + ".2", 2, "site")
        with open(path + ".2", "rb") as handle:
            assert handle.read() == b"da"
        io.remove(path + ".2", "site")
        io.remove(path + ".2", "site")  # second remove: tolerated
        io.fsync_dir(str(tmp_path))
