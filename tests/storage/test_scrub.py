"""Online scrub: disk re-verification, index audits, and repair.

The acceptance bar: ``scrub(repair=True)`` detects and repairs a
deliberately corrupted compacted segment and a forcibly-drifted index
census, both injected out of band (byte flips on disk, direct cache
mutation) so the live store has no idea anything happened.
"""

import os

import pytest

from repro.storage.durable import DurableXml
from repro.storage.recovery import write_manifest
from repro.storage.wal import compact_path, segment_path
from repro.trees.unranked import XmlNode

XML = "<log>" + "<entry><ip/><status/></entry>" * 5 + "</log>"
ELEMENTS = 16  # log + 5 * (entry, ip, status)


def corrupt(path, offset=25):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


@pytest.fixture
def store(tmp_path):
    """A store with a fallback generation: updates, then a checkpoint,
    so ``snapshot.000000`` and ``wal.000000.compact`` exist next to the
    live generation 1 artifacts."""
    directory = str(tmp_path / "store")
    with DurableXml.from_xml(directory, XML, wal_segment_bytes=64) as st:
        st.rename(1, "first")
        st.append_child(0, XmlNode("extra"))
        st.rename(4, "second")
        st.checkpoint()
        st.rename(7, "third")
        yield st


class TestCleanScrub:
    def test_clean_store_scrubs_ok(self, store):
        report = store.scrub()
        assert report.ok
        assert report.findings == []
        assert report.repaired_count == 0
        assert report.repair_error is None
        assert not report.repair
        assert report.generation == store.generation == 1

    def test_checked_counters_prove_coverage(self, store):
        checked = store.scrub().checked
        assert checked["snapshots"] == 2  # fallback + live
        assert checked["wal_files"] >= 2  # compact + live chain
        assert checked["wal_records"] >= 4  # 3 compacted + 1 live
        assert checked["index_rules"] >= 1
        assert checked["label_rules"] >= 1
        assert checked["elements"] == ELEMENTS + 1  # + appended <extra/>

    def test_summary_shape(self, store):
        summary = store.scrub().summary()
        assert set(summary) == {"ok", "generation", "repair", "findings",
                                "repaired", "checked", "repair_error"}
        assert summary["ok"] is True
        assert summary["findings"] == []

    def test_scrub_is_read_only_by_default(self, store):
        generation = store.generation
        files = sorted(os.listdir(store.directory))
        store.scrub()
        assert store.generation == generation
        assert sorted(os.listdir(store.directory)) == files


class TestDiskFindings:
    def test_corrupted_compacted_segment_is_found(self, store):
        compacted = compact_path(store.directory, 0)
        assert os.path.exists(compacted)
        corrupt(compacted)
        report = store.scrub()
        assert not report.ok
        kinds = {(f.kind, f.subject) for f in report.findings}
        assert ("wal-corrupt", compacted) in kinds
        finding = next(f for f in report.findings
                       if f.subject == compacted)
        assert "checksum mismatch" in finding.detail
        assert not finding.repaired

    def test_repair_retires_the_corrupted_compacted_segment(self, store):
        compacted = compact_path(store.directory, 0)
        corrupt(compacted)
        report = store.scrub(repair=True)
        assert report.repair
        assert report.repair_error is None
        assert report.repaired_count == len(report.findings) >= 1
        # The healing checkpoint moved the store forward and retired
        # the damaged generation-0 artifact outright.
        assert store.generation == 2
        assert not os.path.exists(compacted)
        assert store.scrub().ok
        assert store.to_xml().count("<extra/>") == 1

    def test_corrupted_fallback_snapshot_is_found_and_retired(self, store):
        fallback = store._layout.snapshot_path(0)
        corrupt(fallback, offset=30)
        report = store.scrub()
        assert any(f.kind == "snapshot-corrupt" and f.subject == fallback
                   for f in report.findings)
        report = store.scrub(repair=True)
        assert report.repaired_count == len(report.findings) >= 1
        assert not os.path.exists(fallback)
        assert store.scrub().ok

    def test_torn_live_tail_is_found(self, store):
        live = segment_path(store.directory, store.generation,
                            store._wal.active_segment)
        with open(live, "ab") as handle:
            handle.write(b"\x99" * 5)  # torn frame header
        report = store.scrub()
        assert any(f.kind == "wal-tail-torn" and f.subject == live
                   and "torn frame header" in f.detail
                   for f in report.findings)

    def test_manifest_drift_is_found(self, store):
        write_manifest(store.directory, 41)
        report = store.scrub()
        finding = next(f for f in report.findings
                       if f.kind == "manifest-corrupt")
        assert "generation 41" in finding.detail
        # Repair's checkpoint rewrites the manifest at the new truth.
        report = store.scrub(repair=True)
        assert report.repaired_count == len(report.findings) >= 1
        assert store.scrub().ok


class TestIndexFindings:
    def test_drifted_element_census_is_found_and_repaired(self, store):
        index = store.document.index
        start = store.document.grammar.start
        assert index.element_count == ELEMENTS + 1  # warm the cache
        index._elem_segments[start][0] += 7  # out-of-band clobber
        report = store.scrub()
        kinds = {f.kind for f in report.findings}
        assert "grammar-index-drift" in kinds
        assert "element-census-drift" in kinds
        drift = next(f for f in report.findings
                     if f.kind == "grammar-index-drift")
        assert drift.subject == str(start)
        assert "recomputed" in drift.detail
        report = store.scrub(repair=True)
        assert report.repaired_count == len(report.findings) >= 2
        # Eviction through the observer channel: the next read
        # recomputes the rule and lands back on the truth.
        assert index.element_count == ELEMENTS + 1
        assert store.scrub().ok

    def test_drifted_label_census_is_found_and_repaired(self, store):
        label_index = store.document.label_index
        start = store.document.grammar.start
        assert label_index.document_label_count("ip") == 5  # warm
        label_index._rule_counts[start]["phantom"] = 3
        report = store.scrub()
        kinds = {f.kind for f in report.findings}
        assert "label-index-drift" in kinds
        assert "label-census-drift" in kinds
        census = next(f for f in report.findings
                      if f.kind == "label-census-drift")
        assert "phantom" in census.detail
        report = store.scrub(repair=True)
        assert report.repaired_count == len(report.findings) >= 2
        assert label_index.document_label_count("phantom") == 0
        assert label_index.document_label_count("ip") == 5
        assert store.scrub().ok

    def test_index_repair_does_not_touch_the_disk(self, store):
        """Pure index drift needs no checkpoint: eviction alone heals
        it, so the on-disk artifacts stay exactly as they were."""
        index = store.document.index
        start = store.document.grammar.start
        assert index.element_count == ELEMENTS + 1
        index._elem_segments[start][0] += 7
        generation = store.generation
        store.scrub(repair=True)
        assert store.generation == generation

    def test_combined_disk_and_index_damage_heals_in_one_pass(self, store):
        """The repair order matters: indexes are evicted before the
        healing checkpoint, so the new snapshot is written from
        repaired state."""
        compacted = compact_path(store.directory, 0)
        corrupt(compacted)
        index = store.document.index
        start = store.document.grammar.start
        assert index.element_count == ELEMENTS + 1
        index._elem_segments[start][0] += 7
        report = store.scrub(repair=True)
        assert report.repaired_count == len(report.findings) >= 2
        assert not os.path.exists(compacted)
        assert store.scrub().ok
        # The post-repair snapshot round-trips to the true census.
        store.close()
        with DurableXml.open(store.directory) as reopened:
            assert reopened.document.index.element_count == ELEMENTS + 1
            assert reopened.scrub().ok


class TestHealth:
    def test_health_shape(self, store):
        health = store.health()
        assert set(health) == {
            "directory", "generation", "element_count", "degraded",
            "degraded_cause", "wal", "mvcc", "checkpoint_wal_bytes",
            "last_checkpoint_error", "last_recovery", "last_scrub",
            "metrics",
        }
        assert set(health["wal"]) == {
            "generation", "size_bytes", "segment_count",
            "active_segment", "active_segment_bytes",
            "segment_bytes_limit", "rotations", "record_count",
            "tail_error",
        }
        assert set(health["mvcc"]) == {
            "group_commit", "epoch", "pinned_snapshots",
            "pinned_epochs", "oldest_pin_age_seconds",
        }
        assert health["mvcc"]["group_commit"] is False
        assert health["mvcc"]["pinned_snapshots"] == 0
        assert health["directory"] == store.directory
        assert health["generation"] == 1
        assert health["element_count"] == ELEMENTS + 1
        assert health["degraded"] is False
        assert health["degraded_cause"] is None
        assert health["wal"]["segment_bytes_limit"] == 64
        assert health["last_checkpoint_error"] is None
        assert health["last_scrub"] is None
        assert set(health["metrics"]) == {
            "counters", "gauges", "histograms", "sources",
        }

    def test_health_reflects_the_last_scrub(self, store):
        corrupt(compact_path(store.directory, 0))
        store.scrub()
        health = store.health()
        assert health["last_scrub"]["ok"] is False
        assert health["last_scrub"]["repaired"] == 0
        store.scrub(repair=True)
        assert store.health()["last_scrub"]["ok"] is False  # found, fixed
        store.scrub()
        assert store.health()["last_scrub"]["ok"] is True

    def test_health_reports_recovery_after_reopen(self, store):
        directory = store.directory
        store.close()
        with DurableXml.open(directory) as reopened:
            recovery = reopened.health()["last_recovery"]
            assert recovery["replayed"] == 1  # post-checkpoint rename
            assert recovery["degraded"] is False
            assert recovery["dropped_tail_record"] is False
            assert recovery["continuation_generations"] == 0
