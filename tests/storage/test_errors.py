"""The I/O-error matrix: injected ``errno`` failures at every labeled
protocol site.  The contract under a misbehaving disk --

* transient faults are absorbed by retry/backoff and invisible to
  callers;
* a persistent write failure flips the store into read-only degraded
  mode (typed :class:`StoreDegraded`, never a raw ``OSError``), reads
  keep serving, and the on-disk state stays exactly a committed prefix
  (or its one durable-but-unacknowledged successor);
* once the injections stop, the store is writable again -- in-process
  via an error-free checkpoint, or by simply reopening;
* interleaved errno injections and kills (the Hypothesis sweep) still
  recover to exactly a committed prefix.
"""

import errno
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CompressedXml
from repro.storage.durable import CheckpointError, DurableXml, StoreDegraded
from repro.storage.faults import (
    CRASH_POINTS,
    FaultyIO,
    RetryPolicy,
    SimulatedCrash,
)
from repro.storage.recovery import MANIFEST_NAME, RecoveryError
from repro.storage.wal import WalWriteError
from repro.trees.unranked import XmlNode

BASE_XML = "<log>" + "<entry><ip/><status/></entry>" * 6 + "</log>"

HUGE = 1 << 30


def fast_retry(attempts=2):
    return RetryPolicy(attempts=attempts, sleep=lambda _: None)


def _failing_rename(store):
    try:
        store.rename(10 ** 6, "nope")
    except IndexError:
        pass


#: The scripted history the matrix runs: commits, a cleanly failing op
#: (exercises WAL rollback), and explicit checkpoints (snapshot,
#: manifest switch, retirement, compaction) -- with segment_bytes=1 so
#: every commit also rotates the chain.
STEPS = (
    lambda store: store.rename(1, "record"),
    lambda store: store.append_child(0, XmlNode("extra", [XmlNode("x")])),
    _failing_rename,
    lambda store: store.checkpoint(),
    lambda store: store.delete(4),
    lambda store: store.checkpoint(),
    lambda store: store.rename(2, "zzz"),
)


def step_refs():
    """``refs[i]``: the document after the first ``i`` steps."""
    oracle = CompressedXml.from_xml(BASE_XML)
    refs = [oracle.to_xml()]
    oracle.rename(1, "record")
    refs.append(oracle.to_xml())
    oracle.append_child(0, XmlNode("extra", [XmlNode("x")]))
    refs.append(oracle.to_xml())
    refs.append(refs[-1])  # failing rename: no state change
    refs.append(refs[-1])  # checkpoint: no state change
    oracle.delete(4)
    refs.append(oracle.to_xml())
    refs.append(refs[-1])  # checkpoint: no state change
    oracle.rename(2, "zzz")
    refs.append(oracle.to_xml())
    return refs


def run_faulted(store, refs):
    """Run the script under error injection; returns the index into
    ``refs`` of the state every acknowledged answer implies.  Raw
    ``OSError`` escaping the store is the one forbidden outcome."""
    state = 0
    for step in STEPS:
        try:
            step(store)
            state += 1
        except CheckpointError:
            state += 1  # an explicit checkpoint failure preserves state
        except StoreDegraded:
            break
        except OSError as exc:  # pragma: no cover - the failure mode
            pytest.fail(f"raw OSError escaped the store: {exc}")
    return state


#: ``grammar:save`` guards ``CompressedXml.save_grammar`` -- a plain
#: export helper outside the durable commit protocol -- and ``wal:open``
#: only fires while truncating a torn tail at open time, which this
#: error-free-creation script never does.
ERROR_LABELS = tuple(
    label for label in CRASH_POINTS
    if not label.startswith(("grammar:save:", "wal:open:"))
)


class TestErrorMatrix:
    @pytest.mark.parametrize("label", ERROR_LABELS)
    def test_persistent_error_at_every_site(self, tmp_path, label):
        refs = step_refs()
        directory = str(tmp_path / "store")
        io = FaultyIO(error_label=label, error_persistent=True,
                      error_errno=errno.EIO)
        io.disarm()
        store = DurableXml.create(
            directory, CompressedXml.from_xml(BASE_XML), io=io,
            checkpoint_wal_bytes=HUGE, wal_segment_bytes=1,
            retry=fast_retry(),
        )
        io.arm()

        state = run_faulted(store, refs)
        assert io.errors_injected, f"{label} never fired"
        # Reads keep serving, and exactly the acknowledged prefix.
        assert store.to_xml() == refs[state]
        if store.degraded:
            with pytest.raises(StoreDegraded, match="read-only"):
                store.rename(0, "nope")
            assert store.to_xml() == refs[state]

        # The disk heals: injections stop.  An error-free checkpoint
        # proves the write path and lifts degradation in-process.
        io.disarm()
        if store.degraded:
            store.checkpoint()
            assert not store.degraded
            assert store.degraded_cause is None
        store.rename(0, "reborn")
        survivor = store.to_xml()
        store.close()
        with DurableXml.open(directory, wal_segment_bytes=1) as reopened:
            assert reopened.to_xml() == survivor
            assert not reopened.degraded


class TestTransientErrors:
    def test_retries_make_transient_faults_invisible(self, tmp_path):
        delays = []
        retry = RetryPolicy(attempts=4, base_delay=0.01, max_delay=0.04,
                            multiplier=2.0, sleep=delays.append)
        io = FaultyIO(error_label="wal:append:before-fsync",
                      error_errno=errno.EIO, error_count=2)
        io.disarm()
        directory = str(tmp_path / "store")
        store = DurableXml.create(
            directory, CompressedXml.from_xml(BASE_XML), io=io,
            checkpoint_wal_bytes=HUGE, retry=retry,
        )
        io.arm()
        store.rename(1, "record")  # two failures, then success
        assert not store.degraded
        expected = store.to_xml()
        # The backoff schedule ran on the injected clock, never the
        # real one.
        assert delays == [0.01, 0.02]
        assert len(io.errors_injected) == 2
        store.close()
        with DurableXml.open(directory) as reopened:
            assert reopened.to_xml() == expected
            assert reopened.last_recovery.replayed == 1

    def test_torn_append_error_leaves_no_partial_record(self, tmp_path):
        io = FaultyIO(error_label="wal:append:mid-write", error_count=1)
        io.disarm()
        directory = str(tmp_path / "store")
        store = DurableXml.create(
            directory, CompressedXml.from_xml(BASE_XML), io=io,
            checkpoint_wal_bytes=HUGE, retry=fast_retry(3),
        )
        io.arm()
        store.rename(1, "record")
        expected = store.to_xml()
        store.close()
        with DurableXml.open(directory) as reopened:
            assert reopened.last_recovery.replayed == 1
            assert not reopened.last_recovery.dropped_tail_record
            assert reopened.to_xml() == expected


class TestDegradedMode:
    def degraded_store(self, tmp_path, error_errno=errno.ENOSPC):
        directory = str(tmp_path / "store")
        io = FaultyIO(error_label="wal:append:before-write",
                      error_errno=error_errno, error_persistent=True)
        io.disarm()
        store = DurableXml.create(
            directory, CompressedXml.from_xml(BASE_XML), io=io,
            checkpoint_wal_bytes=HUGE, retry=fast_retry(),
        )
        store.rename(1, "record")
        expected = store.to_xml()
        io.arm()
        return directory, io, store, expected

    def test_enospc_flips_read_only_with_typed_cause(self, tmp_path):
        directory, io, store, expected = self.degraded_store(tmp_path)
        with pytest.raises(StoreDegraded) as info:
            store.rename(2, "x")
        assert isinstance(info.value.cause, WalWriteError)
        assert info.value.cause.errno == errno.ENOSPC
        # First raise reports the failing commit; later raises report
        # the standing degraded condition.
        assert "commit failed" in str(info.value)
        assert store.degraded
        assert isinstance(store.degraded_cause, WalWriteError)
        # Reads keep serving the acknowledged state.
        assert store.to_xml() == expected
        assert store.tag_of(1) == "record"
        assert store.select("//record") == [1]
        # Every further write is the typed refusal, stating the cause.
        with pytest.raises(StoreDegraded, match=r"\(degraded\)"):
            store.delete(2)
        with pytest.raises(StoreDegraded) as info2:
            store.append_child(0, XmlNode("y"))
        assert "No space left" in str(info2.value)
        store.close()

    def test_reopen_after_injections_stop_is_writable(self, tmp_path):
        directory, io, store, expected = self.degraded_store(tmp_path)
        with pytest.raises(StoreDegraded):
            store.rename(2, "x")
        store.close()
        # A fresh open without the faulty device: fully writable.
        with DurableXml.open(directory) as reopened:
            assert not reopened.degraded
            assert reopened.to_xml() == expected
            reopened.rename(2, "alive")
            assert reopened.tag_of(2) == "alive"

    def test_healthy_checkpoint_clears_degradation(self, tmp_path):
        directory, io, store, expected = self.degraded_store(tmp_path)
        with pytest.raises(StoreDegraded):
            store.rename(2, "x")
        io.disarm()
        generation = store.checkpoint()
        assert generation == 1
        assert not store.degraded
        store.rename(2, "alive")
        survivor = store.to_xml()
        store.close()
        with DurableXml.open(directory) as reopened:
            assert reopened.to_xml() == survivor

    def test_failed_checkpoint_does_not_clear_degradation(self, tmp_path):
        directory = str(tmp_path / "store")
        io = FaultyIO(error_label="wal:append:before-write",
                      error_errno=errno.EIO, error_persistent=True)
        io.disarm()
        store = DurableXml.create(
            directory, CompressedXml.from_xml(BASE_XML), io=io,
            checkpoint_wal_bytes=HUGE, retry=fast_retry(),
        )
        io.arm()
        with pytest.raises(StoreDegraded):
            store.rename(1, "x")
        # The disk is still bad: the recovery checkpoint fails typed
        # and the store stays read-only.
        with pytest.raises(CheckpointError):
            store.checkpoint()
        assert store.degraded
        store.close()

    def test_stranded_record_does_not_poison_the_fallback(self, tmp_path):
        # A failed append whose tail restore also failed strands a
        # durable record beyond the acknowledged prefix.  The healing
        # checkpoint must seal it away: a later degraded recovery
        # through the fallback chain has to reconstruct exactly the
        # snapshot state, not the strand's successor.
        directory = str(tmp_path / "store")
        # Persistent: the post-fsync failure AND the tail-restoring
        # truncate both fail, so the durable record stays stranded.
        io = FaultyIO(error_label="wal:append:after-fsync",
                      error_errno=errno.EIO, error_persistent=True)
        io.disarm()
        store = DurableXml.create(
            directory, CompressedXml.from_xml(BASE_XML), io=io,
            checkpoint_wal_bytes=HUGE, retry=fast_retry(),
        )
        store.rename(1, "record")
        io.arm()
        with pytest.raises(StoreDegraded):
            store.rename(2, "stranded")
        assert store.degraded
        assert not store.degraded_cause.tail_intact
        io.disarm()
        store.checkpoint()
        expected = store.to_xml()
        assert "stranded" not in expected
        store.close()
        # Force the degraded path: the newest snapshot goes bad.
        from repro.storage.recovery import StoreLayout
        with open(StoreLayout(directory).snapshot_path(1), "r+b") as f:
            f.seek(30)
            byte = f.read(1)
            f.seek(30)
            f.write(bytes([byte[0] ^ 0xFF]))
        with DurableXml.open(directory) as reopened:
            assert reopened.last_recovery.degraded
            assert reopened.to_xml() == expected

    def test_degraded_state_is_visible_in_health(self, tmp_path):
        directory, io, store, _ = self.degraded_store(tmp_path)
        with pytest.raises(StoreDegraded):
            store.rename(2, "x")
        health = store.health()
        assert health["degraded"] is True
        assert "No space left" in health["degraded_cause"]
        io.disarm()
        store.checkpoint()
        assert store.health()["degraded"] is False
        assert store.health()["degraded_cause"] is None
        store.close()


# ----------------------------------------------------------------------
# interleaved errors + kills, over schedule-drawn injection points
# ----------------------------------------------------------------------
ERRNOS = (errno.EIO, errno.ENOSPC, errno.EROFS)


class TestInterleavedFaultsProperty:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_recovery_yields_a_committed_prefix(
        self, tmp_path_factory, data
    ):
        refs = step_refs()
        base = tmp_path_factory.mktemp("interleave")

        # Counting run: how many fault points does this history hit?
        counter = FaultyIO(crash_invocation=10 ** 9)
        counter_store = DurableXml.create(
            str(base / "count"), CompressedXml.from_xml(BASE_XML),
            io=counter, checkpoint_wal_bytes=HUGE, wal_segment_bytes=1,
            retry=fast_retry(),
        )
        for step in STEPS:
            step(counter_store)
        counter_store.close()
        total = sum(counter.occurrences.values())
        assert total > 0

        # Fault run: an errno window at one drawn point, optionally a
        # kill at another.
        error_at = data.draw(st.integers(1, total), label="error_at")
        persistent = data.draw(st.booleans(), label="persistent")
        error_errno = data.draw(st.sampled_from(ERRNOS), label="errno")
        error_count = data.draw(st.integers(1, 2), label="count")
        crash_at = data.draw(
            st.one_of(st.none(), st.integers(1, total)), label="crash_at"
        )
        kwargs = dict(error_invocation=error_at, error_errno=error_errno,
                      error_count=error_count,
                      error_persistent=persistent)
        if crash_at is not None:
            kwargs["crash_invocation"] = crash_at
        io = FaultyIO(**kwargs)

        directory = str(base / "fault")
        state = 0
        crashed = False
        store = None
        try:
            try:
                store = DurableXml.create(
                    directory, CompressedXml.from_xml(BASE_XML), io=io,
                    checkpoint_wal_bytes=HUGE, wal_segment_bytes=1,
                    retry=fast_retry(),
                )
            except (OSError, WalWriteError):
                # Creation is outside the commit protocol: an error
                # before the store exists surfaces directly and leaves
                # at most a half-born directory.
                store = None
            if store is not None:
                for step in STEPS:
                    try:
                        step(store)
                        state += 1
                    except CheckpointError:
                        state += 1
                    except StoreDegraded:
                        break
                    except OSError as exc:  # pragma: no cover
                        pytest.fail(
                            f"raw OSError escaped the store: {exc}")
        except SimulatedCrash:
            crashed = True

        if store is not None and not crashed:
            # The living store answers with exactly its acknowledged
            # prefix, degraded or not.
            assert store.to_xml() == refs[state]
            store.close()

        # Recovery on a healthy device.
        try:
            recovered = DurableXml.open(directory, wal_segment_bytes=1)
        except RecoveryError:
            # Legal only while the store was still being born.
            assert not os.path.exists(
                os.path.join(directory, MANIFEST_NAME))
            assert state == 0
            return
        # Exactly the committed prefix, or its one durable-but-
        # unacknowledged successor.
        assert recovered.to_xml() in refs[state:state + 2]
        assert not recovered.degraded
        recovered.rename(0, "reborn")
        recovered.close()
