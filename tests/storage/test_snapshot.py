"""Binary snapshot round-trips: same document, zero re-census on reload."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CompressedXml
from repro.storage.snapshot import (
    SNAPSHOT_MAGIC,
    SnapshotError,
    document_element_count,
    read_snapshot,
    write_snapshot,
)
from repro.trees.unranked import XmlNode

from tests.strategies import shard_widths, xml_documents

WEBLOG = (
    "<log>"
    + "".join(
        f"<entry><ip/><status/><agent{i % 3}/></entry>" for i in range(12)
    )
    + "</log>"
)


def dirtied_doc(shard_width=None):
    """A document with real history: updates, so dirty-rule state,
    shard touches, and index segments are all non-trivial."""
    doc = CompressedXml.from_xml(WEBLOG, shard_width=shard_width)
    doc.rename(2, "ipaddr")
    doc.append_child(0, XmlNode("trailer", [XmlNode("checksum")]))
    doc.delete(6)
    return doc


def round_trip(doc, tmp_path):
    path = str(tmp_path / "doc.snapshot")
    doc.save_snapshot(path)
    return path, CompressedXml.from_snapshot_file(path)


class TestRoundTrip:
    @pytest.mark.parametrize("shard_width", [None, 8])
    def test_reload_is_the_same_document(self, tmp_path, shard_width):
        doc = dirtied_doc(shard_width)
        _, doc2 = round_trip(doc, tmp_path)
        assert doc2.to_xml() == doc.to_xml()
        assert doc2.element_count == doc.element_count
        assert doc2.compressed_size == doc.compressed_size
        doc2.grammar.validate()

    @pytest.mark.parametrize("shard_width", [None, 8])
    def test_reload_answers_without_recensus(self, tmp_path, shard_width):
        doc = dirtied_doc(shard_width)
        expected = doc.select("//status")
        _, doc2 = round_trip(doc, tmp_path)

        assert doc2.select("//status") == expected
        assert doc2.count("//entry") == doc.count("//entry")
        assert list(doc2.tags()) == list(doc.tags())
        assert doc2.tag_of(2) == doc.tag_of(2)
        # The whole point of persisting index state: the reload answered
        # everything above without censusing a single rule and without a
        # single wholesale invalidation.
        assert doc2.label_index.rules_censused == 0
        assert doc2.label_index.wholesale_invalidations == 0
        assert doc2.index.wholesale_invalidations == 0

    def test_reload_packs_no_kernel_rules_eagerly(self, tmp_path):
        """The flat-kernel analog of rules_censused == 0: importing the
        persisted segments must not build a single rule pack, and must
        not count as a wholesale kernel invalidation either."""
        doc = dirtied_doc()
        _, doc2 = round_trip(doc, tmp_path)
        kernel = doc2.index.kernel
        if kernel is None:
            pytest.skip("kernel disabled (REPRO_USE_KERNEL=0)")
        assert kernel.rules_packed == 0
        assert kernel.wholesale_invalidations == 0

    def test_reload_adopts_the_shard_spine(self, tmp_path):
        doc = dirtied_doc(shard_width=8)
        assert doc.shard_manager is not None
        _, doc2 = round_trip(doc, tmp_path)
        manager = doc2.shard_manager
        assert manager is not None
        manager.check_invariants()
        width, prefix, parents = doc.shard_manager.export_state()
        width2, prefix2, parents2 = manager.export_state()
        assert (width2, prefix2) == (width, prefix)
        assert {h.name for h in parents2} == {h.name for h in parents}

    def test_reload_preserves_recompression_baseline(self, tmp_path):
        doc = dirtied_doc()
        _, doc2 = round_trip(doc, tmp_path)
        assert doc2._baselined == doc._baselined
        assert doc2._last_compressed_size == doc._last_compressed_size
        assert {h.name for h in doc2._dirty.changed} == \
            {h.name for h in doc._dirty.changed}

    def test_reloaded_document_accepts_further_updates(self, tmp_path):
        doc = dirtied_doc(shard_width=8)
        _, doc2 = round_trip(doc, tmp_path)
        doc.rename(1, "after")
        doc2.rename(1, "after")
        doc.append_child(0, XmlNode("more"))
        doc2.append_child(0, XmlNode("more"))
        assert doc2.to_xml() == doc.to_xml()
        doc2.recompress()
        assert doc2.to_xml() == doc.to_xml()


class TestRoundTripProperties:
    @settings(max_examples=25, deadline=None)
    @given(xml_documents(max_elements=20), st.one_of(st.none(),
                                                     shard_widths()))
    def test_snapshot_round_trip(self, tmp_path_factory, tree, width):
        doc = CompressedXml.from_document(tree, shard_width=width)
        if doc.element_count > 2:
            doc.rename(1, "renamed")
            doc.append_child(0, XmlNode("appended"))
        tmp = tmp_path_factory.mktemp("snap")
        path = str(tmp / "doc.snapshot")
        doc.save_snapshot(path)
        doc2 = CompressedXml.from_snapshot_file(path)
        assert doc2.to_xml() == doc.to_xml()
        assert doc2.element_count == doc.element_count
        assert list(doc2.tags()) == list(doc.tags())
        assert doc2.select("//a") == doc.select("//a")
        assert doc2.label_index.rules_censused == 0
        assert doc2.index.wholesale_invalidations == 0
        doc2.grammar.validate()


class TestCorruption:
    def snapshot_path(self, tmp_path):
        doc = dirtied_doc(shard_width=8)
        path = str(tmp_path / "doc.snapshot")
        doc.save_snapshot(path)
        return path

    def test_bit_flip_is_rejected(self, tmp_path):
        path = self.snapshot_path(tmp_path)
        with open(path, "r+b") as handle:
            handle.seek(30)
            byte = handle.read(1)
            handle.seek(30)
            handle.write(bytes([byte[0] ^ 0x40]))
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_truncation_is_rejected(self, tmp_path):
        path = self.snapshot_path(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(40)
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_bad_magic_is_rejected(self, tmp_path):
        path = str(tmp_path / "not.snapshot")
        with open(path, "wb") as handle:
            handle.write(b"NOTSNAP0" + b"\x00" * 32)
        with pytest.raises(SnapshotError, match="magic"):
            read_snapshot(path)

    def test_empty_file_is_rejected(self, tmp_path):
        path = str(tmp_path / "empty.snapshot")
        open(path, "wb").close()
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_element_count_cross_check(self, tmp_path):
        # A snapshot whose stored element count disagrees with what the
        # grammar actually derives is structurally corrupt even when the
        # checksum holds (the writer was broken, not the disk).
        doc = dirtied_doc()
        state = doc.export_state()
        assert state.element_count == \
            document_element_count(state.grammar)
        state.element_count += 1
        path = str(tmp_path / "lying.snapshot")
        write_snapshot(path, state)
        with pytest.raises(SnapshotError, match="element count"):
            read_snapshot(path)

    def test_write_is_atomic_no_temp_residue(self, tmp_path):
        path = self.snapshot_path(tmp_path)
        leftovers = [name for name in tmp_path.iterdir()
                     if name.name.endswith(".tmp")]
        assert leftovers == []
        with open(path, "rb") as handle:
            assert handle.read(8) == SNAPSHOT_MAGIC
