"""Hypothesis strategies shared by the property-based tests.

Three generators matter:

* :func:`binary_xml_trees` -- random structure-only XML documents, the input
  domain of the compressors,
* :func:`slcf_grammars` -- random *valid* SLCF grammars (acyclic, linear,
  parameters in preorder order, all rules reachable), the input domain of
  GrammarRePair and the update machinery,
* :func:`update_scripts` -- random interleavings of document-level updates
  (rename / insert / append_child / delete / recompress), the workload the
  grammar-index invalidation tests replay against a
  :class:`repro.api.CompressedXml`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from hypothesis import strategies as st

from repro.grammar.properties import collect_garbage
from repro.grammar.slcf import Grammar
from repro.trees.node import Node
from repro.trees.symbols import Alphabet, Symbol, parameter_symbol
from repro.trees.unranked import XmlNode

DEFAULT_TAGS = ("a", "b", "c", "d")


@st.composite
def xml_documents(
    draw,
    tags: Tuple[str, ...] = DEFAULT_TAGS,
    max_elements: int = 25,
) -> XmlNode:
    """A random unranked XML structure tree."""
    rng = draw(st.randoms(use_true_random=False))
    n = draw(st.integers(min_value=1, max_value=max_elements))
    root = XmlNode(rng.choice(tags))
    pool = [root]
    for _ in range(n - 1):
        parent = rng.choice(pool)
        child = XmlNode(rng.choice(tags))
        # Insert at a random sibling position to exercise ordering.
        position = rng.randint(0, len(parent.children))
        parent.children.insert(position, child)
        pool.append(child)
    return root


@st.composite
def ranked_trees(
    draw,
    alphabet: Optional[Alphabet] = None,
    max_nodes: int = 40,
) -> Node:
    """A random ranked tree over terminals ``f/2, g/1, a/0, #/0``.

    This exercises general ranked trees, not only binary XML encodings.
    """
    if alphabet is None:
        alphabet = Alphabet()
    f = alphabet.terminal("f", 2)
    g = alphabet.terminal("g", 1)
    a = alphabet.terminal("a", 0)
    bottom = alphabet.bottom()
    rng = draw(st.randoms(use_true_random=False))
    budget = draw(st.integers(min_value=1, max_value=max_nodes))

    def build(remaining: int) -> Tuple[Node, int]:
        if remaining <= 1:
            return Node(rng.choice((a, bottom))), remaining - 1
        symbol = rng.choice((f, g, a, bottom))
        children: List[Node] = []
        remaining -= 1
        for _ in range(symbol.rank):
            child, remaining = build(max(remaining, 1))
            children.append(child)
        return Node(symbol, children), remaining

    tree, _ = build(budget)
    return tree


def _random_rhs(
    rng,
    alphabet: Alphabet,
    callees: List[Symbol],
    rank: int,
    size_budget: int,
) -> Node:
    """A random rule body with exactly ``rank`` parameters, preordered."""
    f = alphabet.terminal("f", 2)
    g = alphabet.terminal("g", 1)
    a = alphabet.terminal("a", 0)
    bottom = alphabet.bottom()

    placeholder = object()  # leaf sentinel later replaced by parameters

    def build(remaining: int):
        choices: List[object] = [a, bottom, f, g]
        choices.extend(callees)
        if remaining <= 1:
            choices = [a, bottom]
        symbol = rng.choice(choices)
        children = [build(max(1, remaining // max(1, symbol.rank) - 1))
                    for _ in range(symbol.rank)]
        return [symbol, children]

    # Build a mutable spine, then force exactly ``rank`` placeholders onto
    # leaf positions (replacing ``#`` or ``a`` leaves, adding depth if the
    # tree has too few leaves).
    spine = build(max(size_budget, rank + 1))

    def leaf_slots(node, acc):
        symbol, children = node
        if not children and symbol in (a, bottom):
            acc.append(node)
        for child in children:
            leaf_slots(child, acc)
        return acc

    slots = leaf_slots(spine, [])
    while len(slots) < rank:
        # Replace the spine root with g(spine) to add another leaf via f.
        spine = [f, [spine, [bottom, []]]]
        slots = leaf_slots(spine, [])
    chosen = sorted(rng.sample(range(len(slots)), rank))
    for param_index, slot_pos in enumerate(chosen, start=1):
        slots[slot_pos][0] = parameter_symbol(param_index)

    # The root must not be a bare parameter.
    if spine[0].is_parameter:
        spine = [g, [spine]]

    def materialize(node) -> Node:
        symbol, children = node
        return Node(symbol, [materialize(child) for child in children])

    rhs = materialize(spine)
    _renumber_parameters_in_preorder(rhs)
    return rhs


def _renumber_parameters_in_preorder(root: Node) -> None:
    """Renumber parameter leaves 1..k by preorder position (model invariant)."""
    counter = 0
    stack = [root]
    ordered: List[Node] = []
    while stack:
        node = stack.pop()
        if node.symbol.is_parameter:
            ordered.append(node)
        stack.extend(reversed(node.children))
    for index, node in enumerate(ordered, start=1):
        node.symbol = parameter_symbol(index)


#: Deliberately tiny width budgets: combined with the small documents
#: the tree strategies produce, every drawn budget forces real shard
#: splits (and, with deletes in the script, merges), so the shard
#: invariants are exercised instead of trivially holding on an unsharded
#: spine.  8 is the enforced minimum width.
SHARD_WIDTHS = (8, 12, 16, 24)


def shard_widths():
    """A random spine-sharding width budget for ``CompressedXml``."""
    return st.sampled_from(SHARD_WIDTHS)


#: The update kinds :func:`update_scripts` draws from.  ``recompress`` is
#: rarer so scripts mostly exercise the incremental (non-rebuild) path.
UPDATE_KINDS = (
    "rename", "rename", "insert", "insert",
    "append", "append", "delete", "recompress",
)


@st.composite
def update_scripts(
    draw,
    max_ops: int = 10,
    tags: Tuple[str, ...] = DEFAULT_TAGS,
):
    """A random update script to replay against a ``CompressedXml``.

    Each entry is ``(kind, fraction, tag)``: ``fraction`` in ``[0, 1)`` is
    mapped by the replaying test onto a valid element index *at application
    time* (the element count shifts as inserts and deletes land), so every
    drawn script is applicable to every document.
    """
    rng = draw(st.randoms(use_true_random=False))
    n = draw(st.integers(min_value=1, max_value=max_ops))
    return [
        (rng.choice(UPDATE_KINDS), rng.random(), rng.choice(tags))
        for _ in range(n)
    ]


#: The op kinds :func:`batch_scripts` draws from -- the four operations
#: :meth:`repro.api.CompressedXml.apply_batch` accepts.
BATCH_KINDS = ("rename", "rename", "insert", "insert", "append", "delete")

#: Deliberately coarse position grid: nearby (and equal) fractions are
#: drawn often, so scripts exercise same-target and adjacent-target
#: collisions -- the cases where batch planning must flush or retarget.
BATCH_FRACTIONS = (0.0, 0.05, 0.1, 0.3, 0.31, 0.5, 0.51, 0.52, 0.9, 0.99)


@st.composite
def batch_scripts(
    draw,
    max_ops: int = 12,
    tags: Tuple[str, ...] = DEFAULT_TAGS,
):
    """A random batch-update script for the equivalence property tests.

    Each entry is ``(kind, fraction, tag, wide)``: the replaying test maps
    ``fraction`` onto a valid element index *at application time* while
    recording the concrete ops against a sequentially-updated document,
    then replays those ops through ``apply_batch`` on a fresh copy --
    asserting the two documents are observationally equal.  ``wide``
    selects multi-element insert/append content, so index shifting is
    exercised with deltas > 1.
    """
    rng = draw(st.randoms(use_true_random=False))
    n = draw(st.integers(min_value=1, max_value=max_ops))
    return [
        (
            rng.choice(BATCH_KINDS),
            rng.choice(BATCH_FRACTIONS),
            rng.choice(tags),
            rng.random() < 0.25,
        )
        for _ in range(n)
    ]


#: Step shapes :func:`label_paths` draws from: (axis, wildcard?, predicate?)
#: weights chosen so most paths mix axes and a third carry a predicate.
_PATH_AXES = ("/", "/", "//", "//")


@st.composite
def label_paths(
    draw,
    tags: Tuple[str, ...] = DEFAULT_TAGS,
    max_steps: int = 4,
):
    """A random label-path expression over the shared tag alphabet.

    Drawn paths deliberately include selective and non-matching labels,
    wildcards, and small positional predicates, so the query property
    tests exercise census pruning, empty results, and per-context
    positions -- the replaying test compares
    :meth:`repro.api.CompressedXml.select` against
    :func:`repro.query.naive.naive_select` on the decompressed tree.
    """
    rng = draw(st.randoms(use_true_random=False))
    n = draw(st.integers(min_value=1, max_value=max_steps))
    parts = []
    for _ in range(n):
        axis = rng.choice(_PATH_AXES)
        label = rng.choice(tags + ("*", "zz"))  # "zz" never occurs: empty sets
        predicate = f"[{rng.randint(1, 3)}]" if rng.random() < 0.3 else ""
        parts.append(f"{axis}{label}{predicate}")
    return "".join(parts)


@st.composite
def slcf_grammars(
    draw,
    max_rules: int = 5,
    max_rank: int = 2,
    rule_size: int = 8,
) -> Grammar:
    """A random valid SLCF grammar with every rule reachable from the start.

    Rules are generated bottom-up so the call relation is acyclic by
    construction; afterwards unreachable rules are garbage-collected and the
    grammar is validated.
    """
    rng = draw(st.randoms(use_true_random=False))
    alphabet = Alphabet()
    n_rules = draw(st.integers(min_value=1, max_value=max_rules))

    heads: List[Symbol] = []
    for index in range(n_rules - 1):
        rank = rng.randint(0, max_rank)
        heads.append(alphabet.nonterminal(f"N{index}", rank))
    start = alphabet.nonterminal("S", 0)

    grammar = Grammar(alphabet, start)
    # Bottom-up: rule i may call rules defined before it.
    for index, head in enumerate(heads):
        rhs = _random_rhs(rng, alphabet, heads[:index], head.rank, rule_size)
        grammar.set_rule(head, rhs)
    grammar.set_rule(start, _random_rhs(rng, alphabet, heads, 0, rule_size))

    collect_garbage(grammar)
    grammar.validate()
    return grammar
