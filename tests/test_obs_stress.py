"""Threaded tracing stress: spans stay coherent under concurrent commits.

The tracer keeps one span stack per thread; the ring of finished root
spans is the only shared structure.  This suite drives the same shape
of load as ``test_mvcc_stress`` -- group-commit writer threads plus
pinned snapshot readers -- with tracing *enabled* and then audits every
recorded trace:

* **single-threaded** -- a trace (root span plus its whole subtree)
  was produced by exactly one thread; concurrent commits never
  interleave into each other's trees;
* **time-nested** -- every child span starts and ends within its
  parent's window, and siblings are recorded in start order;
* **no leakage** -- trace ids are unique, every commit produced by a
  writer shows up as its own root span (modulo the bounded ring), and
  child names are the commit stages, never another trace's root.

Metrics are exercised alongside: the commit histogram's count must
equal the number of successful commits across all threads (lock-safe
counters, no lost increments).
"""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, set_default_tracer, trace_span
from repro.storage.durable import DurableXml
from repro.updates.batch import BatchRename

N_WRITERS = 4
ELEMS_PER_WRITER = 6
ROUNDS = 20
N_READERS = 2
JOIN_TIMEOUT = 60.0

XML = (
    "<log>"
    + "<w0/>" * ELEMS_PER_WRITER
    + "<w1/>" * ELEMS_PER_WRITER
    + "<w2/>" * ELEMS_PER_WRITER
    + "<w3/>" * ELEMS_PER_WRITER
    + "</log>"
)

TOTAL_COMMITS = N_WRITERS * ROUNDS
#: Traced reads per reader; further reads run untraced so the ring is
#: guaranteed to retain every commit root alongside them.
TRACED_READS = 40
RING_SIZE = TOTAL_COMMITS + N_READERS * TRACED_READS + 16


def writer_range(writer):
    start = 1 + writer * ELEMS_PER_WRITER
    return range(start, start + ELEMS_PER_WRITER)


def stamp_ops(writer, round_number):
    return [BatchRename(index, f"w{writer}r{round_number}")
            for index in writer_range(writer)]


@pytest.fixture
def tracer():
    """A fresh default tracer large enough to hold every root span the
    stress emits, restored afterwards so other tests keep theirs."""
    fresh = Tracer(ring_size=RING_SIZE)
    previous = set_default_tracer(fresh)
    try:
        yield fresh
    finally:
        set_default_tracer(previous)


def walk(span):
    yield span
    for child in span.children:
        yield from walk(child)


def assert_single_threaded(span):
    threads = {s.thread_id for s in walk(span)}
    assert len(threads) == 1, (
        f"trace {span.trace_id} ({span.name}) mixes threads: {threads}"
    )


def assert_time_nested(span):
    for child in span.children:
        assert child.start >= span.start, (
            f"{child.name} started before its parent {span.name}"
        )
        assert child.end is not None and span.end is not None
        assert child.end <= span.end, (
            f"{child.name} outlived its parent {span.name}"
        )
        assert_time_nested(child)
    starts = [child.start for child in span.children]
    assert starts == sorted(starts), (
        f"children of {span.name} recorded out of start order"
    )


def run_stress(store):
    errors = []
    stop = threading.Event()

    def write(writer):
        try:
            for round_number in range(ROUNDS):
                store.apply_batch(stamp_ops(writer, round_number))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(f"writer {writer}: {exc!r}")
            stop.set()

    def read(reader):
        try:
            # Readers trace too: their spans must never attach to a
            # writer's commit tree (thread-local stacks).  Only the
            # first TRACED_READS are traced -- a free-running traced
            # loop would evict the commit roots from the bounded ring;
            # the rest keep snapshot pressure on the writers untraced.
            traced = 0
            while not stop.is_set():
                if traced < TRACED_READS:
                    traced += 1
                    with trace_span("snapshot_read", reader=reader):
                        with store.snapshot() as view:
                            with trace_span("walk"):
                                view.to_xml()
                else:
                    with store.snapshot() as view:
                        view.to_xml()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(f"reader {reader}: {exc!r}")
            stop.set()

    writers = [threading.Thread(target=write, args=(w,), daemon=True)
               for w in range(N_WRITERS)]
    readers = [threading.Thread(target=read, args=(r,), daemon=True)
               for r in range(N_READERS)]
    for thread in readers + writers:
        thread.start()
    for thread in writers:
        thread.join(JOIN_TIMEOUT)
        assert not thread.is_alive(), "writer deadlocked (join timed out)"
    stop.set()
    for thread in readers:
        thread.join(JOIN_TIMEOUT)
        assert not thread.is_alive(), "reader deadlocked (join timed out)"
    assert errors == [], errors


class TestTracingUnderGroupCommit:
    @pytest.fixture
    def store(self, tmp_path, tracer):
        registry = MetricsRegistry()
        with DurableXml.from_xml(
            str(tmp_path / "store"), XML,
            shard_width=8, group_commit=True, metrics=registry,
        ) as st:
            yield st

    def test_traces_stay_single_threaded_and_nested(self, store, tracer):
        run_stress(store)
        roots = tracer.recent()
        commits = [s for s in roots if s.name == "commit"]
        assert len(commits) == TOTAL_COMMITS, (
            f"expected {TOTAL_COMMITS} commit traces, ring holds "
            f"{len(commits)}"
        )
        for span in roots:
            assert_single_threaded(span)
            assert_time_nested(span)
            assert span.end is not None, f"{span.name} never closed"
            assert span.duration_s >= 0.0

    def test_no_cross_trace_leakage(self, store, tracer):
        run_stress(store)
        roots = tracer.recent()
        trace_ids = [s.trace_id for s in roots]
        assert all(tid is not None for tid in trace_ids)
        assert len(trace_ids) == len(set(trace_ids)), \
            "duplicate trace ids in the ring"
        commit_stages = {"wal_append", "apply", "fsync"}
        for span in roots:
            if span.name == "commit":
                assert span.tags["group_commit"] is True
                assert span.tags["op"] == "batch"
                names = {child.name for child in span.children}
                assert names <= commit_stages, (
                    f"foreign span inside a commit trace: {names}"
                )
                # The pipelined path always appends and applies; the
                # fsync child may be a no-op but is always entered.
                assert names == commit_stages
            elif span.name == "snapshot_read":
                names = [child.name for child in span.children]
                assert set(names) <= {"walk"}, (
                    f"a commit stage leaked into a reader trace: {names}"
                )
            else:  # pragma: no cover - unexpected root
                raise AssertionError(f"unexpected root span {span.name}")

    def test_metrics_counts_match_commits(self, store, tracer):
        run_stress(store)
        registry = store.metrics_registry
        commit_hist = registry.histogram("repro_commit_seconds")
        assert commit_hist.snapshot()["count"] == TOTAL_COMMITS
        batch_counter = registry.counter("repro_commits_total", op="batch")
        assert batch_counter.value == TOTAL_COMMITS
        for stage in ("append", "apply", "fsync"):
            hist = registry.histogram(
                "repro_commit_stage_seconds", stage=stage)
            assert hist.snapshot()["count"] == TOTAL_COMMITS, (
                f"stage {stage!r} lost observations under concurrency"
            )

    def test_ring_stays_bounded_under_load(self, tmp_path):
        """A tiny ring under the same load: the tracer must hold only
        the most recent roots and never error on concurrent appends."""
        tiny = Tracer(ring_size=8)
        previous = set_default_tracer(tiny)
        try:
            with DurableXml.from_xml(
                str(tmp_path / "store"), XML,
                shard_width=8, group_commit=True,
            ) as store:
                run_stress(store)
        finally:
            set_default_tracer(previous)
        roots = tiny.recent()
        assert len(roots) == 8
        for span in roots:
            assert_single_threaded(span)
            assert_time_nested(span)
