"""Property tests for the grammar-native query engine (repro.query.engine).

The correctness bar is :func:`repro.query.naive.naive_select` evaluated on
the decompressed tree: for random documents, random label paths, and
random update/batch scripts, ``select`` on the grammar must return exactly
the same element-index sets -- and the results must satisfy the same
index contract every update entry point enforces.
"""

import pytest
from hypothesis import given, settings

from repro.api import CompressedXml
from repro.query.engine import extract_subtree, iter_matching_elements, select
from repro.query.label_index import LabelIndex
from repro.query.naive import naive_select
from repro.trees.unranked import XmlNode, xml_equal
from repro.trees.xml_io import serialize_xml
from repro.updates.batch import BatchAppend, BatchDelete, BatchInsert, BatchRename

from tests.strategies import (
    batch_scripts,
    label_paths,
    update_scripts,
    xml_documents,
)
from tests.grammar.test_index import replay_script

LOG = (
    "<log>"
    "<entry><ip/><ts/></entry>"
    "<entry><ip/><status/></entry>"
    "<meta><status/></meta>"
    "</log>"
)

#: Paths covering every syntactic feature against the LOG fixture.
FIXED_PATHS = (
    "/log",
    "/log/entry",
    "/log/entry/ip",
    "//entry",
    "//status",
    "/log//status",
    "/log/entry[2]",
    "/log/entry[2]/status",
    "/log/*[1]",
    "//entry/*",
    "//entry//ip",
    "//*",
    "/nope",
    "//nope",
    "/log/entry[9]",
)


def assert_select_matches_naive(doc, paths):
    plain = doc.to_document()
    for path in paths:
        assert doc.select(path) == naive_select(plain, path), path
        assert doc.count(path) == len(naive_select(plain, path)), path


class TestSelectFixtures:
    def test_fixture_paths(self):
        doc = CompressedXml.from_xml(LOG)
        assert_select_matches_naive(doc, FIXED_PATHS)

    def test_results_are_update_ready_indices(self):
        """The advertised contract: select() results feed rename/delete."""
        doc = CompressedXml.from_xml(LOG)
        for index in doc.select("//status"):
            assert doc.tag_of(index) == "status"
        doc.apply_batch(
            [BatchRename(i, "code") for i in doc.select("//status")]
        )
        assert doc.select("//status") == []
        assert doc.count("//code") == 2

    def test_select_on_uncompressed_grammar(self):
        doc = CompressedXml.from_xml(LOG, compress=False)
        assert_select_matches_naive(doc, FIXED_PATHS)

    def test_census_pruning_skips_unlabeled_subtrees(self):
        """The LabelIndex must make a selective descendant query visit far
        fewer derivation nodes than the element count."""
        doc = CompressedXml.from_xml(
            "<log>" + "<entry><ip/><ts/></entry>" * 500 + "</log>"
        )
        doc.rename(7, "needle")
        visited = []
        lindex = doc.label_index
        original = LabelIndex.node_table

        def counting(self, head, label):
            visited.append(head)
            return original(self, head, label)

        LabelIndex.node_table = counting
        try:
            assert doc.select("//needle") == [7]
        finally:
            LabelIndex.node_table = original
        # A decompress-then-walk would touch all 1501 elements.
        assert len(visited) < doc.element_count / 10


class TestSelectProperties:
    @given(xml_documents(max_elements=30), label_paths())
    @settings(max_examples=60, deadline=None)
    def test_select_matches_naive(self, tree, path):
        doc = CompressedXml.from_document(tree)
        assert doc.select(path) == naive_select(tree, path), path

    @given(
        xml_documents(max_elements=20),
        update_scripts(max_ops=6),
        label_paths(max_steps=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_select_matches_naive_after_update_scripts(
        self, tree, script, path
    ):
        """LabelIndex invalidation is exercised: the index is warmed before
        the script, queried after every operation."""
        doc = CompressedXml.from_document(tree)
        assert doc.select(path) == naive_select(doc.to_document(), path)
        for _ in replay_script(doc, script):
            assert doc.select(path) == \
                naive_select(doc.to_document(), path), path
        assert doc.label_index.wholesale_invalidations == 0

    @given(xml_documents(max_elements=15), batch_scripts(max_ops=8))
    @settings(max_examples=20, deadline=None)
    def test_select_matches_naive_after_batches(self, tree, script):
        """Batched updates (one observer epoch per group) keep the query
        indexes coherent too."""
        doc = CompressedXml.from_document(tree)
        doc.count("//a")  # warm the label index
        ops = []
        for kind, fraction, tag, wide in script:
            count = doc.element_count
            content = [XmlNode(tag), XmlNode(tag)] if wide else XmlNode(tag)
            if kind == "rename":
                ops.append(BatchRename(int(fraction * count), tag))
            elif kind == "insert" and count > 1:
                ops.append(BatchInsert(1 + int(fraction * (count - 1)),
                                       content))
            elif kind == "append":
                ops.append(BatchAppend(int(fraction * count), content))
            elif kind == "delete" and count > 1:
                ops.append(BatchDelete(1 + int(fraction * (count - 1))))
            else:
                continue
            doc.apply_batch(ops[-1:])
        for path in ("//a", "/a//b", "//*[2]", "//c/d"):
            assert doc.select(path) == \
                naive_select(doc.to_document(), path), path


class TestIterMatching:
    def test_range_and_label_windows(self):
        doc = CompressedXml.from_xml(LOG)
        tags = list(doc.tags())
        gindex, lindex = doc.index, doc.label_index
        for lo in range(len(tags) + 1):
            for hi in range(lo, len(tags) + 1):
                for label in ("ip", "entry", "nope", None):
                    expected = [
                        i for i in range(lo, hi)
                        if label is None or tags[i] == label
                    ]
                    got = list(
                        iter_matching_elements(gindex, lindex, lo, hi, label)
                    )
                    assert got == expected, (lo, hi, label)

    def test_hi_none_means_document_end(self):
        doc = CompressedXml.from_xml(LOG)
        got = list(
            iter_matching_elements(doc.index, doc.label_index, 0, None, "ip")
        )
        assert got == [2, 5]

    def test_label_requires_index(self):
        doc = CompressedXml.from_xml(LOG)
        with pytest.raises(ValueError):
            list(iter_matching_elements(doc.index, None, 0, None, "ip"))

    def test_wildcard_needs_no_label_index(self):
        doc = CompressedXml.from_xml(LOG)
        got = list(iter_matching_elements(doc.index, None, 2, 6, None))
        assert got == [2, 3, 4, 5]


class TestSubtreeExtraction:
    def test_extract_matches_decompressed_subtrees(self):
        doc = CompressedXml.from_xml(LOG)
        plain = doc.to_document()
        nodes = list(plain.preorder())
        for index in range(doc.element_count):
            assert xml_equal(extract_subtree(doc.index, index), nodes[index])

    def test_subtree_xml_of_root_is_whole_document(self):
        doc = CompressedXml.from_xml(LOG)
        assert doc.subtree_xml(0) == LOG

    def test_root_extraction_never_walks_the_window(self, monkeypatch):
        """Element 0's subtree is the whole document: it must ride the
        plain preorder stream, not the count-table window walk (which
        pays subtree-size arithmetic per symbol just to skip nothing)."""
        from repro.query import engine

        doc = CompressedXml.from_xml(LOG)

        def forbid(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError(
                "extract_subtree(0) fell back to the full-window walk"
            )

        monkeypatch.setattr(engine, "_iter_window_symbols", forbid)
        assert serialize_xml(extract_subtree(doc.index, 0)) == LOG
        with pytest.raises(AssertionError):
            extract_subtree(doc.index, 1)  # non-root still windows

    def test_subtree_xml_leaf_and_indent(self):
        doc = CompressedXml.from_xml(LOG)
        assert doc.subtree_xml(2) == "<ip/>"
        assert doc.subtree_xml(1, indent=2) == (
            "<entry>\n  <ip/>\n  <ts/>\n</entry>\n"
        )

    def test_extract_out_of_range(self):
        doc = CompressedXml.from_xml(LOG)
        with pytest.raises(IndexError):
            extract_subtree(doc.index, doc.element_count)
        with pytest.raises(IndexError):
            doc.subtree_xml(-1)

    @given(xml_documents(max_elements=25), update_scripts(max_ops=5))
    @settings(max_examples=20, deadline=None)
    def test_extract_matches_decompressed_after_updates(self, tree, script):
        doc = CompressedXml.from_document(tree)
        for _ in replay_script(doc, script):
            pass
        plain = doc.to_document()
        nodes = list(plain.preorder())
        for index in range(doc.element_count):
            assert xml_equal(extract_subtree(doc.index, index), nodes[index])


class TestEngineLevelApi:
    def test_select_accepts_preparsed_paths(self):
        from repro.query.parser import parse_path

        doc = CompressedXml.from_xml(LOG)
        parsed = parse_path("//entry")
        assert select(doc.index, doc.label_index, parsed) == [1, 4]
