"""Tests for the persistent label census (repro.query.label_index).

Correctness bar: the census must equal a ``Counter`` over the streamed
tags of ``valG(S)`` -- after construction, after arbitrary update
interleavings, and after recompressions -- while the eviction counters
prove the maintenance is per-rule, never wholesale.
"""

from collections import Counter

import pytest
from hypothesis import given, settings

from repro.api import CompressedXml
from repro.grammar.slcf import Grammar
from repro.query.label_index import LabelIndex
from repro.trees.builder import parse_term
from repro.trees.symbols import Alphabet
from repro.trees.unranked import XmlNode

from tests.strategies import update_scripts, xml_documents
from tests.grammar.test_index import replay_script


def naive_census(doc):
    return Counter(doc.tags())


def assert_census_matches(doc, lindex):
    census = dict(lindex.document_labels())
    assert census == dict(naive_census(doc))
    for label, count in census.items():
        assert lindex.document_label_count(label) == count
    assert lindex.document_label_count("never-a-tag") == 0


class TestCensus:
    def test_flat_document(self):
        doc = CompressedXml.from_xml("<log>" + "<e/>" * 40 + "</log>")
        lindex = LabelIndex(doc.grammar)
        assert lindex.document_label_count("e") == 40
        assert lindex.document_label_count("log") == 1
        assert_census_matches(doc, lindex)

    def test_figure1_grammar(self, figure1_grammar):
        lindex = LabelIndex(figure1_grammar)
        # valG(S) = f over six a-nodes (Figure 1: 7 elements in total).
        assert lindex.document_label_count("f") == 1
        assert lindex.document_label_count("a") == 6

    def test_rule_counts_exclude_parameters(self, figure1_grammar):
        lindex = LabelIndex(figure1_grammar)
        A = next(h for h in figure1_grammar.rules if h.name == "A")
        # A -> a(#, a(y1, y2)): two a's of its own, arguments excluded.
        assert lindex.rule_label_count(A, "a") == 2

    def test_node_table_segments(self, figure1_grammar):
        lindex = LabelIndex(figure1_grammar)
        S = figure1_grammar.start
        table = lindex.node_table(S, "a")
        rhs = figure1_grammar.rhs(S)
        # The whole start RHS generates all six a's; the ⊥ child none.
        assert table[id(rhs)][0] == 6
        assert table[id(rhs.children[1])][0] == 0

    @given(xml_documents(max_elements=30))
    @settings(max_examples=25, deadline=None)
    def test_census_matches_stream_property(self, tree):
        doc = CompressedXml.from_document(tree)
        assert_census_matches(doc, LabelIndex(doc.grammar))


class TestInvalidation:
    def test_set_rule_flows_to_document_census(self):
        alphabet = Alphabet()
        S = alphabet.nonterminal("S", 0)
        A = alphabet.nonterminal("A", 0)
        nts = frozenset({"S", "A"})
        grammar = Grammar(alphabet, S)
        grammar.set_rule(S, parse_term("f(A,A)", alphabet, nts))
        grammar.set_rule(A, parse_term("a(#,#)", alphabet, nts))
        lindex = LabelIndex(grammar)
        assert lindex.document_label_count("a") == 2
        grammar.set_rule(A, parse_term("b(a(#,#),#)", alphabet, nts))
        # Changing the callee must evict the cached start census too.
        assert lindex.document_label_count("a") == 2
        assert lindex.document_label_count("b") == 2
        assert lindex.evicted_rules >= 1
        assert lindex.wholesale_invalidations == 0

    def test_node_tables_evicted_with_rule(self, figure1_grammar):
        lindex = LabelIndex(figure1_grammar)
        S = figure1_grammar.start
        lindex.node_table(S, "a")
        figure1_grammar.notify_rule_changed(S)
        assert (S, "a") not in lindex._node_tables
        # Recomputed on demand, still correct.
        rhs = figure1_grammar.rhs(S)
        assert lindex.node_table(S, "a")[id(rhs)][0] == 6

    def test_detach_stops_notifications(self, figure1_grammar):
        lindex = LabelIndex(figure1_grammar)
        lindex.detach()
        assert lindex not in figure1_grammar._observers

    def test_updates_do_not_wholesale_invalidate(self):
        doc = CompressedXml.from_xml(
            "<log>" + "<entry><ip/><ts/></entry>" * 60 + "</log>"
        )
        lindex = doc.label_index
        assert_census_matches(doc, lindex)
        warmed = lindex.cached_rule_count
        assert warmed == len(doc.grammar.rules)
        censused_before = lindex.rules_censused
        doc.rename(5, "touched")
        # Per-rule eviction only: most of the grammar keeps its census.
        assert lindex.wholesale_invalidations == 0
        assert lindex.cached_rule_count > 0
        assert_census_matches(doc, lindex)
        # The lazy recompute re-censused the dirtied slice, not the world.
        assert lindex.rules_censused - censused_before < warmed

    def test_relabel_event_spares_structural_tables(self):
        """A pure relabel must evict the label census but *not* the
        structural count tables: GrammarIndex handles the
        ``rule_relabeled`` event as a keep-everything no-op."""
        doc = CompressedXml.from_xml("<log>" + "<e/>" * 30 + "</log>")
        lindex = doc.label_index
        assert lindex.document_label_count("e") == 30
        doc.rename(5, "x")  # first rename may isolate (structural change)
        assert doc.tag_of(5) == "x"  # rebuild structural tables
        assert lindex.document_label_count("x") == 1
        structural_evictions = doc.index.evicted_rules
        label_evictions = lindex.evicted_rules
        doc.rename(5, "y")  # path already isolated: a pure relabel
        assert doc.index.evicted_rules == structural_evictions
        assert lindex.evicted_rules > label_evictions
        assert doc.tag_of(5) == "y"
        assert lindex.document_label_count("y") == 1
        assert lindex.document_label_count("x") == 0

    def test_incremental_recompress_keeps_label_tables(self):
        doc = CompressedXml.from_xml(
            "<log>" + "<entry><ip/><ts/></entry>" * 60 + "</log>"
        )
        lindex = doc.label_index
        assert_census_matches(doc, lindex)
        for index in (3, 40, 80):
            doc.rename(index, f"t{index}")
        doc.recompress()
        assert lindex.wholesale_invalidations == 0
        assert_census_matches(doc, lindex)

    def test_non_incremental_recompress_resets_wholesale(self):
        doc = CompressedXml.from_xml(
            "<log>" + "<e/>" * 50 + "</log>", incremental_recompress=False
        )
        lindex = doc.label_index
        assert_census_matches(doc, lindex)
        doc.rename(3, "x")
        doc.recompress()
        # The historical full-rescan contract resets the label index too.
        assert lindex.wholesale_invalidations == 1
        assert_census_matches(doc, lindex)


class TestUpdateInterleavings:
    @given(xml_documents(max_elements=20), update_scripts(max_ops=8))
    @settings(max_examples=20, deadline=None)
    def test_census_matches_stream_after_every_update(self, tree, script):
        doc = CompressedXml.from_document(tree)
        lindex = doc.label_index
        assert_census_matches(doc, lindex)
        for _ in replay_script(doc, script):
            assert_census_matches(doc, lindex)
        assert lindex.wholesale_invalidations == 0
