"""Tests for the label-path parser (repro.query.parser)."""

import pytest

from repro.query.parser import (
    CHILD,
    DESCENDANT,
    LabelPath,
    QueryStep,
    QuerySyntaxError,
    parse_path,
)


def shapes(path):
    """Compact (axis, label, position) triples for assertions."""
    return [(s.axis, s.label, s.position) for s in parse_path(path)]


class TestParsing:
    def test_single_child_step(self):
        assert shapes("/log") == [(CHILD, "log", None)]

    def test_child_chain(self):
        assert shapes("/log/entry/ip") == [
            (CHILD, "log", None),
            (CHILD, "entry", None),
            (CHILD, "ip", None),
        ]

    def test_descendant_axis(self):
        assert shapes("//status") == [(DESCENDANT, "status", None)]
        assert shapes("/log//status") == [
            (CHILD, "log", None),
            (DESCENDANT, "status", None),
        ]

    def test_wildcard(self):
        assert shapes("/log/*") == [(CHILD, "log", None), (CHILD, None, None)]
        assert shapes("//*") == [(DESCENDANT, None, None)]

    def test_positional_predicate(self):
        assert shapes("/log/entry[3]") == [
            (CHILD, "log", None),
            (CHILD, "entry", 3),
        ]
        assert shapes("//*[1]") == [(DESCENDANT, None, 1)]

    def test_tag_charset_matches_xml_io(self):
        # The same names xml_io accepts: dots, dashes, colons, digits.
        assert shapes("/ns:a/b-2/c.d") == [
            (CHILD, "ns:a", None),
            (CHILD, "b-2", None),
            (CHILD, "c.d", None),
        ]

    def test_whitespace_tolerated_around_path(self):
        assert shapes("  /log ") == [(CHILD, "log", None)]

    def test_preparsed_path_passes_through(self):
        parsed = parse_path("/a//b")
        assert parse_path(parsed) is parsed

    def test_path_repr_and_len(self):
        parsed = parse_path("/a//b[2]")
        assert len(parsed) == 2
        assert parsed.text == "/a//b[2]"

    def test_steps_equality(self):
        assert parse_path("/a").steps == parse_path("/a").steps
        assert parse_path("/a").steps != parse_path("//a").steps


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "log",            # relative paths are not supported
            "a/b",
            "/",              # axis without a test
            "//",
            "/a/",            # trailing axis
            "/a[0]",          # positions are 1-based
            "/a[b]",
            "/a[1",
            "/a b",
            "/a/[1]",
            "///a",
        ],
    )
    def test_malformed_paths_raise(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_path(bad)

    def test_non_string_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_path(42)

    def test_syntax_error_is_value_error(self):
        assert issubclass(QuerySyntaxError, ValueError)

    def test_empty_step_list_rejected(self):
        with pytest.raises(QuerySyntaxError):
            LabelPath([], "")

    def test_bad_axis_rejected(self):
        with pytest.raises(QuerySyntaxError):
            QueryStep("parent", "a")
