"""Tests for the tree-level update semantics (Section III / V-C)."""

import pytest

from repro.trees.binary import decode_binary, encode_binary, encode_forest
from repro.trees.builder import parse_term
from repro.trees.symbols import Alphabet
from repro.trees.unranked import XmlNode, xml_equal
from repro.updates.operations import (
    DeleteOp,
    InsertOp,
    RenameOp,
    UpdateError,
    apply_op_to_tree,
    delete_subtree,
    insert_before,
    rename_node,
    rightmost_null,
)
from repro.trees.traversal import node_at_preorder


@pytest.fixture
def doc_tree(alphabet):
    # <a><b/><c><d/></c></a>
    doc = XmlNode("a", [XmlNode("b"), XmlNode("c", [XmlNode("d")])])
    return encode_binary(doc, alphabet)


class TestRename:
    def test_paper_example(self, alphabet):
        """rename(f(d(#,b(...))), u=d-node, a) relabels just that node."""
        tree = parse_term("f(d(#,b(#,a(#,b(#,#)))),#)", alphabet)
        target = tree.child(1)
        rename_node(target, alphabet.terminal("a", 2))
        assert tree.to_sexpr() == "f(a(#,b(#,a(#,b(#,#)))),#)"

    def test_rename_bottom_rejected(self, alphabet):
        tree = parse_term("f(#,#)", alphabet)
        with pytest.raises(UpdateError):
            rename_node(tree.child(1), alphabet.terminal("z", 0))

    def test_rename_to_bottom_rejected(self, doc_tree, alphabet):
        with pytest.raises(UpdateError):
            rename_node(doc_tree, alphabet.bottom())

    def test_rename_must_preserve_rank(self, doc_tree, alphabet):
        with pytest.raises(UpdateError, match="rank"):
            rename_node(doc_tree, alphabet.terminal("leafy", 0))


class TestInsert:
    def test_insert_before_element(self, doc_tree, alphabet):
        # Insert <x/> before the <c> element.
        fragment = encode_forest([XmlNode("x")], alphabet)
        c_node = doc_tree.child(1).child(2)  # b's next sibling is c
        assert c_node.label == "c"
        root = insert_before(doc_tree, c_node, fragment)
        decoded = decode_binary(root)
        assert xml_equal(
            decoded,
            XmlNode("a", [XmlNode("b"), XmlNode("x"),
                          XmlNode("c", [XmlNode("d")])]),
        )

    def test_insert_at_null_appends(self, doc_tree, alphabet):
        """Inserting at a null pointer is an 'insert after' (Section V-C)."""
        fragment = encode_forest([XmlNode("x")], alphabet)
        c_node = doc_tree.child(1).child(2)
        null_after_c = c_node.child(2)
        assert null_after_c.symbol.is_bottom
        root = insert_before(doc_tree, null_after_c, fragment)
        decoded = decode_binary(root)
        assert [e.tag for e in decoded.children] == ["b", "c", "x"]

    def test_insert_into_empty_child_list(self, doc_tree, alphabet):
        fragment = encode_forest([XmlNode("x")], alphabet)
        b_node = doc_tree.child(1)
        empty_children = b_node.child(1)
        assert empty_children.symbol.is_bottom
        root = insert_before(doc_tree, empty_children, fragment)
        decoded = decode_binary(root)
        assert [e.tag for e in decoded.children[0].children] == ["x"]

    def test_insert_forest_of_multiple_siblings(self, doc_tree, alphabet):
        fragment = encode_forest([XmlNode("x"), XmlNode("y")], alphabet)
        b_node = doc_tree.child(1)
        root = insert_before(doc_tree, b_node, fragment)
        decoded = decode_binary(root)
        assert [e.tag for e in decoded.children] == ["x", "y", "b", "c"]

    def test_insert_before_root_rewraps_document(self, doc_tree, alphabet):
        fragment = encode_forest([XmlNode("x")], alphabet)
        root = insert_before(doc_tree, doc_tree, fragment)
        assert root.label == "x"
        assert root.child(2).label == "a"

    def test_insert_empty_forest_is_identity(self, doc_tree, alphabet):
        before = doc_tree.to_sexpr()
        root = insert_before(
            doc_tree, doc_tree.child(1), encode_forest([], alphabet)
        )
        assert root.to_sexpr() == before

    def test_fragment_is_copied_not_moved(self, doc_tree, alphabet):
        fragment = encode_forest([XmlNode("x")], alphabet)
        snapshot = fragment.to_sexpr()
        insert_before(doc_tree, doc_tree.child(1), fragment)
        assert fragment.to_sexpr() == snapshot

    def test_rightmost_null_validation(self, alphabet):
        bad = parse_term("x(#,q)", alphabet)
        with pytest.raises(UpdateError, match="right-most"):
            rightmost_null(bad)


class TestDelete:
    def test_delete_leaf_element(self, doc_tree, alphabet):
        b_node = doc_tree.child(1)
        root = delete_subtree(doc_tree, b_node)
        decoded = decode_binary(root)
        assert xml_equal(decoded, XmlNode("a", [XmlNode("c", [XmlNode("d")])]))

    def test_delete_element_with_children(self, doc_tree, alphabet):
        c_node = doc_tree.child(1).child(2)
        root = delete_subtree(doc_tree, c_node)
        decoded = decode_binary(root)
        assert xml_equal(decoded, XmlNode("a", [XmlNode("b")]))

    def test_delete_keeps_following_siblings(self, alphabet):
        doc = XmlNode("r", [XmlNode("a"), XmlNode("b"), XmlNode("c")])
        tree = encode_binary(doc, alphabet)
        b_binary = tree.child(1).child(2)
        assert b_binary.label == "b"
        root = delete_subtree(tree, b_binary)
        assert [e.tag for e in decode_binary(root).children] == ["a", "c"]

    def test_delete_bottom_rejected(self, doc_tree):
        with pytest.raises(UpdateError):
            delete_subtree(doc_tree, doc_tree.child(2))

    def test_insert_then_delete_roundtrip(self, doc_tree, alphabet):
        """delete at p inverts insert at p (the workload's foundation)."""
        before = doc_tree.to_sexpr()
        fragment = encode_forest([XmlNode("x", [XmlNode("y")])], alphabet)
        target = doc_tree.child(1)
        position = 1  # preorder index of the b node
        root = insert_before(doc_tree, target, fragment)
        inserted = node_at_preorder(root, position)
        assert inserted.label == "x"
        root = delete_subtree(root, inserted)
        assert root.to_sexpr() == before


class TestApplyOp:
    def test_rename_op(self, doc_tree, alphabet):
        root = apply_op_to_tree(doc_tree, RenameOp(1, "z"), alphabet)
        assert decode_binary(root).children[0].tag == "z"

    def test_insert_op(self, doc_tree, alphabet):
        fragment = encode_forest([XmlNode("x")], alphabet)
        root = apply_op_to_tree(doc_tree, InsertOp(1, fragment), alphabet)
        assert [e.tag for e in decode_binary(root).children] == ["x", "b", "c"]

    def test_delete_op(self, doc_tree, alphabet):
        root = apply_op_to_tree(doc_tree, DeleteOp(1), alphabet)
        assert [e.tag for e in decode_binary(root).children] == ["c"]
