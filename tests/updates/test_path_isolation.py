"""Tests for path isolation (Section III-A, Lemma 1)."""

import pytest
from hypothesis import given, settings

from repro.grammar.derivation import expand
from repro.grammar.navigation import grammar_generates_tree
from repro.grammar.properties import generated_node_count
from repro.trees.node import edge_count
from repro.trees.traversal import preorder
from repro.updates.path_isolation import isolate

from tests.conftest import make_string_grammar
from tests.strategies import slcf_grammars


class TestIsolation:
    def test_isolated_node_has_right_label(self, figure1_grammar):
        tree = expand(figure1_grammar)
        labels = [n.symbol.name for n in preorder(tree)]
        for index, expected in enumerate(labels):
            g = figure1_grammar.copy()
            result = isolate(g, index)
            assert result.node.symbol.name == expected
            g.validate()
            assert grammar_generates_tree(g, tree)

    def test_isolation_preserves_value_on_gexp(self):
        """Section III-A's G_exp: isolate position 333 of a^1024."""
        rules = {"S": "A1A1"}
        for i in range(1, 10):
            rules[f"A{i}"] = f"A{i+1}A{i+1}"
        rules["A10"] = "a"
        g = make_string_grammar(rules)
        total = generated_node_count(g)
        result = isolate(g, 332)
        assert result.node.symbol.name == "a"
        g.validate()
        assert generated_node_count(g) == total
        # Each production applied at most once along the path.
        assert result.inlined_rules <= len(rules)

    def test_lemma1_bound(self):
        """|iso(G,u)| <= 2|G| (Lemma 1)."""
        rules = {"S": "A1A1"}
        for i in range(1, 10):
            rules[f"A{i}"] = f"A{i+1}A{i+1}"
        rules["A10"] = "a"
        g = make_string_grammar(rules)
        size_before = g.size
        isolate(g, 332)
        iso_size = edge_count(g.rhs(g.start))
        assert iso_size <= 2 * size_before

    def test_isolating_already_explicit_node_is_free(self, figure1_grammar):
        g = figure1_grammar
        size_before = g.size
        result = isolate(g, 0)  # the root f is explicit in the start rule
        assert result.inlined_rules == 0
        assert g.size == size_before

    def test_isolation_only_grows_start_rule(self, figure1_grammar):
        g = figure1_grammar
        other_sizes = {
            head.name: rhs.to_sexpr()
            for head, rhs in g.rules.items()
            if head is not g.start
        }
        isolate(g, 7)
        for head, rhs in g.rules.items():
            if head is not g.start:
                assert other_sizes[head.name] == rhs.to_sexpr()

    @settings(max_examples=30, deadline=None)
    @given(slcf_grammars())
    def test_isolation_property(self, grammar):
        """Every index isolates to the right label, val is preserved, and
        Lemma 1's bound holds."""
        tree = expand(grammar, budget=100_000)
        labels = [n.symbol.name for n in preorder(tree)]
        size_before = grammar.size
        import random

        indices = random.Random(42).sample(
            range(len(labels)), min(5, len(labels))
        )
        for index in indices:
            g = grammar.copy()
            result = isolate(g, index)
            g.validate()
            assert result.node.symbol.name == labels[index]
            assert grammar_generates_tree(g, tree)
            assert edge_count(g.rhs(g.start)) <= 2 * max(size_before, 1)
