"""Tests for the reverse-derived update workloads (Section V-C)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grammar.navigation import grammar_generates_tree
from repro.repair.tree_repair import tree_repair
from repro.trees.binary import encode_binary
from repro.trees.node import deep_copy, tree_equal
from repro.trees.symbols import Alphabet
from repro.trees.unranked import XmlNode
from repro.updates.grammar_updates import apply_ops
from repro.updates.operations import (
    DeleteOp,
    InsertOp,
    RenameOp,
    apply_op_to_tree,
)
from repro.updates.workload import (
    generate_clustered_element_ops,
    generate_rename_workload,
    generate_update_workload,
)

from tests.strategies import xml_documents


def sample_doc():
    return XmlNode(
        "db",
        [
            XmlNode("rec", [XmlNode("id"), XmlNode("name")])
            for _ in range(12)
        ],
    )


class TestReverseDerivation:
    def test_replay_reaches_original_document(self, alphabet):
        doc = encode_binary(sample_doc(), alphabet)
        workload = generate_update_workload(
            doc, 25, alphabet, rng=random.Random(3)
        )
        replayed = deep_copy(workload.seed)
        for op in workload.operations:
            replayed = apply_op_to_tree(replayed, op, alphabet)
        assert tree_equal(replayed, doc)

    def test_insert_fraction_respected(self, alphabet):
        # Few updates relative to the document size, as in the paper (the
        # reverse derivation can only invert an insert while non-root
        # elements remain, so huge workloads on tiny documents clamp).
        doc = encode_binary(sample_doc(), alphabet)
        workload = generate_update_workload(
            doc, 25, alphabet, insert_fraction=0.9, rng=random.Random(5)
        )
        inserts = sum(
            1 for op in workload.operations if isinstance(op, InsertOp)
        )
        assert inserts >= 19  # ~90% of 25, tolerant of clamping

    def test_all_deletes_workload(self, alphabet):
        doc = encode_binary(sample_doc(), alphabet)
        workload = generate_update_workload(
            doc, 10, alphabet, insert_fraction=0.0, rng=random.Random(1)
        )
        assert all(isinstance(op, DeleteOp) for op in workload.operations)
        replayed = deep_copy(workload.seed)
        for op in workload.operations:
            replayed = apply_op_to_tree(replayed, op, alphabet)
        assert tree_equal(replayed, doc)

    def test_original_document_unmodified(self, alphabet):
        doc = encode_binary(sample_doc(), alphabet)
        snapshot = doc.to_sexpr()
        generate_update_workload(doc, 20, alphabet, rng=random.Random(2))
        assert doc.to_sexpr() == snapshot

    def test_deterministic_for_fixed_seed(self, alphabet):
        doc = encode_binary(sample_doc(), alphabet)
        w1 = generate_update_workload(doc, 15, alphabet, rng=random.Random(9))
        w2 = generate_update_workload(doc, 15, alphabet, rng=random.Random(9))
        assert [type(op).__name__ for op in w1.operations] == [
            type(op).__name__ for op in w2.operations
        ]
        assert [op.position for op in w1.operations] == [
            op.position for op in w2.operations
        ]

    @settings(max_examples=15, deadline=None)
    @given(xml_documents(max_elements=20), st.integers(0, 2**16))
    def test_replay_property(self, doc, seed):
        alphabet = Alphabet()
        binary = encode_binary(doc, alphabet)
        workload = generate_update_workload(
            binary, 12, alphabet, rng=random.Random(seed)
        )
        replayed = deep_copy(workload.seed)
        for op in workload.operations:
            replayed = apply_op_to_tree(replayed, op, alphabet)
        assert tree_equal(replayed, binary)

    def test_grammar_replay_matches_tree_replay(self, alphabet):
        """The workload drives grammar updates to the same document."""
        doc = encode_binary(sample_doc(), alphabet)
        workload = generate_update_workload(
            doc, 15, alphabet, rng=random.Random(11)
        )
        grammar = tree_repair(workload.seed, alphabet)
        apply_ops(grammar, workload.operations)
        grammar.validate()
        assert grammar_generates_tree(grammar, doc)


class TestRenameWorkload:
    def test_renames_target_elements_only(self, alphabet):
        doc = encode_binary(sample_doc(), alphabet)
        ops = generate_rename_workload(doc, 30, alphabet,
                                       rng=random.Random(4))
        from repro.trees.traversal import node_at_preorder

        assert len(ops) == 30
        for op in ops:
            assert not node_at_preorder(doc, op.position).symbol.is_bottom

    def test_fresh_labels_are_fresh(self, alphabet):
        doc = encode_binary(sample_doc(), alphabet)
        existing = {"db", "rec", "id", "name"}
        ops = generate_rename_workload(doc, 20, alphabet,
                                       rng=random.Random(4))
        labels = {op.new_label for op in ops}
        assert labels.isdisjoint(existing)
        assert len(labels) == 20

    def test_existing_label_mode(self, alphabet):
        doc = encode_binary(sample_doc(), alphabet)
        ops = generate_rename_workload(
            doc, 20, alphabet, rng=random.Random(4), fresh_labels=False
        )
        assert {op.new_label for op in ops} <= {"db", "rec", "id", "name"}

    def test_rename_workload_applies_to_grammar(self, alphabet):
        doc = encode_binary(sample_doc(), alphabet)
        ops = generate_rename_workload(doc, 10, alphabet,
                                       rng=random.Random(8))
        grammar = tree_repair(doc, alphabet)
        reference = deep_copy(doc)
        for op in ops:
            reference = apply_op_to_tree(reference, op, alphabet)
        apply_ops(grammar, ops)
        assert grammar_generates_tree(grammar, reference)


class TestClusteredElementOps:
    def test_ops_are_valid_and_clustered(self):
        from repro.api import CompressedXml
        from repro.updates.batch import BatchDelete

        doc = CompressedXml.from_xml(
            "<log>" + "<e><a/><b/></e>" * 400 + "</log>"
        )
        ops = generate_clustered_element_ops(
            doc.element_count, 40, rng=random.Random(5), cluster_width=64
        )
        assert len(ops) == 40
        # Every index is valid at its application time: apply_batch
        # validates each op against the evolving element count.
        doc.apply_batch(ops)
        doc.grammar.validate()
        # Targets cluster: the index span stays within the width plus the
        # room the batch's own inserts/deletes can shift it.
        indices = [
            op.parent_index if hasattr(op, "parent_index") else op.index
            for op in ops
        ]
        deletes = sum(1 for op in ops if isinstance(op, BatchDelete))
        assert max(indices) - min(indices) <= 64 + 64 * deletes

    def test_document_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_clustered_element_ops(2, 5)

    def test_delete_budget_degrades_to_renames(self):
        """On a document too small for its delete charge, deletes stop
        being drawn instead of producing out-of-range indices."""
        from repro.api import CompressedXml
        from repro.updates.batch import BatchDelete

        doc = CompressedXml.from_xml("<log>" + "<e/>" * 49 + "</log>")
        ops = generate_clustered_element_ops(
            doc.element_count, 40, rng=random.Random(2), max_delete_extent=64
        )
        assert not any(isinstance(op, BatchDelete) for op in ops)
        doc.apply_batch(ops)  # every index valid at its application time
        doc.grammar.validate()
