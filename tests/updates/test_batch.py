"""Batch updates must be observationally equivalent to the sequential loop.

The contract under test: ``apply_batch(ops)`` -- sequential *semantics*
(each op's element index addresses the document as the previous ops leave
it), batched *execution* (one multi-target isolation per group, shared
derivation prefixes inlined once, one mutation epoch, one settle).  The
oracle is the single-op API applied in a loop, which is itself
property-tested against plain-tree reference semantics.
"""

import pytest
from hypothesis import given, settings

from repro.api import CompressedXml
from repro.grammar.slcf import RuleTouchRecorder
from repro.trees.unranked import XmlNode
from repro.updates.batch import (
    BatchAppend,
    BatchDelete,
    BatchInsert,
    BatchRename,
)
from repro.updates.operations import UpdateError
from repro.updates.path_isolation import isolate, isolate_many

from tests.strategies import batch_scripts, xml_documents


def concretize(seq_doc, script):
    """Replay an abstract script on ``seq_doc`` (the sequential oracle),
    recording the concrete ops valid at each op's application time."""
    ops = []
    for kind, fraction, tag, wide in script:
        count = seq_doc.element_count
        content = (
            [XmlNode(tag), XmlNode("wide", [XmlNode("inner")])]
            if wide else XmlNode(tag)
        )
        if kind == "rename":
            index = int(fraction * count)
            seq_doc.rename(index, tag)
            ops.append(BatchRename(index, tag))
        elif kind == "insert":
            if count < 2:
                continue
            index = 1 + int(fraction * (count - 1))
            seq_doc.insert(index, content)
            ops.append(BatchInsert(index, content))
        elif kind == "append":
            index = int(fraction * count)
            seq_doc.append_child(index, content)
            ops.append(BatchAppend(index, content))
        else:
            if count < 3:
                continue
            index = 1 + int(fraction * (count - 1))
            seq_doc.delete(index)
            ops.append(BatchDelete(index))
    return ops


class TestBatchEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(xml_documents(max_elements=20), batch_scripts())
    def test_batch_equals_sequential(self, tree, script):
        """Full ``to_xml`` round-trip equality against the sequential loop,
        across random scripts with same/adjacent-target collisions."""
        sequential = CompressedXml.from_document(tree)
        batched = CompressedXml.from_document(tree)
        ops = concretize(sequential, script)
        stats = batched.apply_batch(ops)
        assert batched.to_xml() == sequential.to_xml()
        assert batched.element_count == sequential.element_count
        batched.grammar.validate()
        assert stats.operations == len(ops)
        assert stats.inlined_rules <= stats.per_path_inlines

    @settings(max_examples=15, deadline=None)
    @given(xml_documents(max_elements=20), batch_scripts())
    def test_batch_equals_sequential_under_auto_recompress(self, tree, script):
        """The same property with the maintenance policy enabled on both
        sides -- the batch settles once, the loop after every op, but the
        documents they maintain must be identical."""
        sequential = CompressedXml.from_document(
            tree, auto_recompress_factor=1.5)
        batched = CompressedXml.from_document(
            tree, auto_recompress_factor=1.5)
        ops = concretize(sequential, script)
        batched.apply_batch(ops)
        assert batched.to_xml() == sequential.to_xml()
        batched.grammar.validate()


def run_pair(xml, seq_fn, ops, expect_groups=None):
    sequential = CompressedXml.from_xml(xml)
    batched = CompressedXml.from_xml(xml)
    seq_fn(sequential)
    stats = batched.apply_batch(ops)
    assert batched.to_xml() == sequential.to_xml()
    batched.grammar.validate()
    if expect_groups is not None:
        assert stats.groups == expect_groups
    return batched, stats


LOG = "<log>" + "<e><p/><q/></e>" * 8 + "</log>"


class TestCollisions:
    def test_same_target_renames_last_wins(self):
        run_pair(LOG,
                 lambda d: (d.rename(4, "one"), d.rename(4, "two")),
                 [BatchRename(4, "one"), BatchRename(4, "two")],
                 expect_groups=1)

    def test_noop_rename_plans_nothing(self):
        """Parity with the single-op fast path: renaming an element to
        the tag it already carries must not isolate or grow the grammar."""
        doc = CompressedXml.from_xml(LOG)
        size_before = doc.compressed_size
        stats = doc.apply_batch([BatchRename(1, "e"), BatchRename(2, "p")])
        assert stats.isolations == 0
        assert doc.compressed_size == size_before

    def test_noop_fast_path_disabled_after_same_target_rename(self):
        """rename(i, \"x\"); rename(i, original) must apply both -- the
        pre-group label no longer reflects the pending relabeling."""
        run_pair(LOG,
                 lambda d: (d.rename(4, "x"), d.rename(4, "e")),
                 [BatchRename(4, "x"), BatchRename(4, "e")],
                 expect_groups=1)

    def test_rename_then_delete_same_target(self):
        run_pair(LOG,
                 lambda d: (d.rename(4, "gone"), d.delete(4)),
                 [BatchRename(4, "gone"), BatchDelete(4)],
                 expect_groups=1)

    def test_same_position_inserts_flush(self):
        """insert(i, A); insert(i, B) leaves B before A -- the second
        target is A's first element, created in-batch, so the planner
        must flush rather than misattribute it."""
        run_pair(LOG,
                 lambda d: (d.insert(3, XmlNode("A")), d.insert(3, XmlNode("B"))),
                 [BatchInsert(3, XmlNode("A")), BatchInsert(3, XmlNode("B"))],
                 expect_groups=2)

    def test_append_chain_shares_one_terminator(self):
        """Three appends to one parent: all three target the same ⊥ node
        pre-batch; the executor threads the replacement terminator so the
        children come out in op order -- in a single group."""
        run_pair(LOG,
                 lambda d: (d.append_child(1, XmlNode("A")),
                            d.append_child(1, XmlNode("B")),
                            d.append_child(1, XmlNode("C"))),
                 [BatchAppend(1, XmlNode("A")), BatchAppend(1, XmlNode("B")),
                  BatchAppend(1, XmlNode("C"))],
                 expect_groups=1)

    def test_rename_inside_inserted_content_flushes(self):
        run_pair(LOG,
                 lambda d: (d.insert(4, XmlNode("A", [XmlNode("inner")])),
                            d.rename(5, "xx")),
                 [BatchInsert(4, XmlNode("A", [XmlNode("inner")])),
                  BatchRename(5, "xx")],
                 expect_groups=2)

    def test_delete_shifts_later_targets_by_subtree_extent(self):
        """Deleting <e><p/><q/></e> removes 3 indices at once."""
        run_pair(LOG,
                 lambda d: (d.delete(1), d.rename(1, "after"), d.delete(2)),
                 [BatchDelete(1), BatchRename(1, "after"), BatchDelete(2)],
                 expect_groups=1)

    def test_insert_then_delete_the_shifted_original(self):
        run_pair(LOG,
                 lambda d: (d.insert(4, XmlNode("A")), d.delete(5)),
                 [BatchInsert(4, XmlNode("A")), BatchDelete(5)],
                 expect_groups=1)

    def test_insert_inside_subtree_then_delete_container(self):
        """The delete's apply-time extent must include batch content the
        earlier insert put inside its subtree."""
        run_pair(LOG,
                 lambda d: (d.insert(2, XmlNode("A")), d.delete(1),
                            d.rename(1, "next")),
                 [BatchInsert(2, XmlNode("A")), BatchDelete(1),
                  BatchRename(1, "next")],
                 expect_groups=1)

    def test_append_then_delete_parent(self):
        run_pair(LOG,
                 lambda d: (d.append_child(1, XmlNode("A")), d.delete(1),
                            d.rename(1, "next")),
                 [BatchAppend(1, XmlNode("A")), BatchDelete(1),
                  BatchRename(1, "next")],
                 expect_groups=1)

    def test_append_to_last_element_then_shifted_op(self):
        """The appended children land off the end -- at element_count --
        and later targets past the insertion point shift correctly."""
        run_pair(LOG,
                 lambda d: (d.append_child(d.element_count - 1, XmlNode("Z")),
                            d.rename(5, "rr")),
                 [BatchAppend(24, XmlNode("Z")), BatchRename(5, "rr")],
                 expect_groups=1)


class TestValidation:
    def test_root_delete_rejected_with_value_error(self):
        doc = CompressedXml.from_xml(LOG)
        with pytest.raises(ValueError, match="root"):
            doc.apply_batch([BatchRename(1, "pre"), BatchDelete(0)])
        # Sequential parity: the ops before the invalid one were applied.
        assert doc.tag_of(1) == "pre"

    def test_out_of_range_raises_after_earlier_ops(self):
        doc = CompressedXml.from_xml(LOG)
        with pytest.raises(IndexError):
            doc.apply_batch([BatchRename(1, "pre"), BatchRename(10**6, "x")])
        assert doc.tag_of(1) == "pre"

    def test_range_checked_against_apply_time_count(self):
        """After a subtree delete the batch's own shrinkage invalidates a
        later index -- exactly as the sequential loop would."""
        doc = CompressedXml.from_xml("<a><b><c/><d/></b><e/></a>")
        with pytest.raises(IndexError):
            doc.apply_batch([BatchDelete(1), BatchRename(2, "x")])

    def test_malformed_ops_rejected(self):
        doc = CompressedXml.from_xml(LOG)
        with pytest.raises(ValueError):
            doc.apply_batch(["rename"])
        with pytest.raises(IndexError):
            # Error parity with doc.rename(-1, ...): IndexError.
            BatchRename(-1, "x")
        with pytest.raises(ValueError):
            BatchRename(1, "")
        with pytest.raises(ValueError):
            BatchInsert(1, ["not-a-node"])

    def test_empty_batch_and_empty_content_are_noops(self):
        doc = CompressedXml.from_xml(LOG)
        before = doc.to_xml()
        stats = doc.apply_batch([])
        assert stats.operations == 0 and stats.groups == 0
        doc.apply_batch([BatchInsert(3, [])])
        assert doc.to_xml() == before


class TestBatchMechanics:
    def test_single_group_single_epoch(self):
        """Observers see one coherent mutation epoch per group: only the
        start rule is reported changed (plus rules removed by gc)."""
        doc = CompressedXml.from_xml(LOG)
        recorder = RuleTouchRecorder()
        doc.grammar.register_observer(recorder)
        doc.apply_batch([BatchRename(2, "x"), BatchRename(9, "y"),
                         BatchAppend(5, XmlNode("z"))])
        assert recorder.changed == {doc.grammar.start}

    def test_counters_and_builder(self):
        doc = CompressedXml.from_xml(LOG)
        with doc.batch() as b:
            b.rename(1, "x").append_child(2, XmlNode("y")).delete(4)
        assert b.stats is not None
        assert doc.updates_applied == 3
        assert doc.batches_applied == 1
        assert doc.rules_inlined_total == b.stats.inlined_rules

    def test_builder_aborts_on_exception(self):
        doc = CompressedXml.from_xml(LOG)
        before = doc.to_xml()
        with pytest.raises(RuntimeError):
            with doc.batch() as b:
                b.rename(1, "x")
                raise RuntimeError("abort")
        assert doc.to_xml() == before
        assert b.stats is None

    def test_index_stays_consistent_after_batch(self):
        doc = CompressedXml.from_xml(LOG)
        doc.apply_batch([BatchRename(2, "x"), BatchDelete(5),
                         BatchInsert(3, XmlNode("n"))])
        tags = list(doc.tags())
        assert len(tags) == doc.element_count
        for index in range(doc.element_count):
            assert doc.tag_of(index) == tags[index]

    def test_batch_settles_once_under_auto_policy(self):
        """One recompression check per batch: the loop recompresses per
        op, the batch at most once at the end."""
        doc = CompressedXml.from_xml(LOG, auto_recompress_factor=1.2)
        runs_before = doc.recompress_runs
        doc.apply_batch([BatchRename(i, f"t{i}") for i in range(1, 12)])
        assert doc.recompress_runs <= runs_before + 1


class TestIsolateMany:
    def test_shared_prefix_inlined_once(self, figure1_grammar):
        """Two targets below the same rule chain: the union isolation
        performs strictly fewer inlines than two solo isolations."""
        from repro.grammar.derivation import expand
        from repro.grammar.navigation import (
            grammar_generates_tree,
            resolve_preorder_path,
        )
        from repro.trees.traversal import preorder

        tree = expand(figure1_grammar)
        labels = [node.symbol.name for node in preorder(tree)]
        # Preorder 4 and 6 both lie inside the first B subtree: their
        # derivation paths share the enter-B, enter-A prefix entirely.
        solo_total = 0
        for index in (4, 6):
            solo = figure1_grammar.copy()
            solo_total += isolate(solo, index).inlined_rules
        grammar = figure1_grammar.copy()
        paths = [resolve_preorder_path(grammar, index) for index in (4, 6)]
        result = isolate_many(grammar, paths)
        grammar.set_rule(grammar.start, result.root)
        assert result.inlined_rules < solo_total
        assert [node.symbol.name for node in result.nodes] == \
            [labels[4], labels[6]]
        grammar.validate()
        assert grammar_generates_tree(grammar, tree)

    def test_identical_paths_share_one_node(self, figure1_grammar):
        from repro.grammar.navigation import resolve_preorder_path

        grammar = figure1_grammar
        paths = [resolve_preorder_path(grammar, 5),
                 resolve_preorder_path(grammar, 5)]
        result = isolate_many(grammar, paths)
        assert result.nodes[0] is result.nodes[1]
