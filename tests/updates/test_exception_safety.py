"""A raising update must leave the document exactly as it was.

The durability layer leans on this: a WAL record whose in-memory apply
fails is rolled back on disk, which is only sound if the failed apply
did not half-mutate the in-memory grammar either.  Each case below
drives an operation that fails *validation* (not crash-level faults)
and asserts full observational equality afterwards."""

import pytest

from repro.api import CompressedXml
from repro.trees.unranked import XmlNode
from repro.updates.operations import UpdateError

XML = "<log>" + "<entry><ip/><status/></entry>" * 4 + "</log>"


def fresh(**kwargs):
    return CompressedXml.from_xml(XML, **kwargs)


def observe(doc):
    return (
        doc.to_xml(),
        doc.element_count,
        doc.compressed_size,
        list(doc.tags()),
        doc.select("//status"),
    )


def assert_unchanged(doc, before, op):
    with pytest.raises((UpdateError, IndexError)):
        op(doc)
    assert observe(doc) == before
    doc.grammar.validate()
    # The document is not just unchanged but fully functional.
    doc.rename(1, "still-works")
    assert doc.tag_of(1) == "still-works"


FAILING_OPS = [
    pytest.param(lambda d: d.rename(10 ** 6, "x"),
                 id="rename-out-of-range"),
    pytest.param(lambda d: d.rename(2, "#"), id="rename-to-bottom"),
    pytest.param(lambda d: d.delete(10 ** 6), id="delete-out-of-range"),
    pytest.param(lambda d: d.delete(0), id="delete-root"),
    pytest.param(lambda d: d.insert(10 ** 6, XmlNode("x")),
                 id="insert-out-of-range"),
    pytest.param(lambda d: d.insert(0, XmlNode("x")),
                 id="insert-before-root"),
    pytest.param(lambda d: d.append_child(10 ** 6, XmlNode("x")),
                 id="append-out-of-range"),
]


class TestSingleOpExceptionSafety:
    @pytest.mark.parametrize("op", FAILING_OPS)
    def test_failing_op_leaves_document_unchanged(self, op):
        doc = fresh()
        assert_unchanged(doc, observe(doc), op)

    @pytest.mark.parametrize("op", FAILING_OPS)
    def test_failing_op_on_sharded_document(self, op):
        doc = fresh(shard_width=8)
        assert_unchanged(doc, observe(doc), op)

    def test_failing_op_after_history(self):
        doc = fresh(shard_width=8)
        doc.rename(1, "record")
        doc.append_child(0, XmlNode("extra", [XmlNode("x")]))
        doc.delete(5)
        before = observe(doc)
        assert_unchanged(doc, before, lambda d: d.rename(10 ** 6, "x"))

    def test_validation_happens_before_isolation(self):
        # A failing op must not even dirty the grammar: the compressed
        # size and the recompression-dirty set stay identical, proving
        # no path was isolated and later rolled back.
        doc = fresh()
        dirty_before = set(doc._dirty.changed)
        size_before = doc.compressed_size
        for op in (lambda d: d.rename(2, "#"),
                   lambda d: d.delete(10 ** 6)):
            with pytest.raises((UpdateError, IndexError)):
                op(doc)
        assert set(doc._dirty.changed) == dirty_before
        assert doc.compressed_size == size_before
