"""Grammar-level updates must match tree-level reference semantics."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grammar.derivation import expand
from repro.grammar.navigation import grammar_generates_tree
from repro.grammar.slcf import Grammar
from repro.repair.tree_repair import tree_repair
from repro.trees.binary import encode_binary, encode_forest
from repro.trees.node import deep_copy, node_count
from repro.trees.symbols import Alphabet
from repro.trees.unranked import XmlNode
from repro.updates.grammar_updates import apply_op, apply_ops, delete, insert, rename
from repro.updates.operations import (
    DeleteOp,
    InsertOp,
    RenameOp,
    UpdateError,
    apply_op_to_tree,
)

from tests.strategies import xml_documents


def compressed(doc, alphabet):
    tree = encode_binary(doc, alphabet)
    return tree_repair(tree, alphabet), tree


class TestRename:
    def test_rename_on_shared_rule_affects_one_node(self, alphabet):
        """The G8 lesson (Section III-A): only one occurrence changes."""
        doc = XmlNode("r", [XmlNode("e") for _ in range(8)])
        grammar, tree = compressed(doc, alphabet)
        # Rename the first e (binary preorder index 1).
        rename(grammar, 1, "z")
        expected = apply_op_to_tree(deep_copy(tree), RenameOp(1, "z"), alphabet)
        grammar.validate()
        assert grammar_generates_tree(grammar, expected)

    def test_rename_bottom_rejected(self, alphabet):
        doc = XmlNode("r", [XmlNode("e")])
        grammar, tree = compressed(doc, alphabet)
        # Index 2 is e's first-child ⊥ slot.
        with pytest.raises(UpdateError):
            rename(grammar, 2, "z")

    def test_rename_same_label_is_noop(self, alphabet):
        """The fast path: no isolation, so the start rule must not grow."""
        doc = XmlNode("r", [XmlNode("e") for _ in range(8)])
        grammar, tree = compressed(doc, alphabet)
        size_before = grammar.size
        rules_before = len(grammar)
        rename(grammar, 1, "e")
        assert grammar.size == size_before
        assert len(grammar) == rules_before
        grammar.validate()
        assert grammar_generates_tree(grammar, tree)

    def test_rename_bottom_to_its_own_name_still_rejected(self, alphabet):
        doc = XmlNode("r", [XmlNode("e")])
        grammar, tree = compressed(doc, alphabet)
        from repro.trees.symbols import BOTTOM_NAME

        with pytest.raises(UpdateError):
            rename(grammar, 2, BOTTOM_NAME)


class TestInsertDelete:
    def test_insert_matches_reference(self, alphabet):
        doc = XmlNode("r", [XmlNode("e") for _ in range(6)])
        grammar, tree = compressed(doc, alphabet)
        fragment = encode_forest([XmlNode("x", [XmlNode("y")])], alphabet)
        op = InsertOp(3, fragment)
        insert(grammar, op.position, op.fragment)
        expected = apply_op_to_tree(deep_copy(tree), op, alphabet)
        grammar.validate()
        assert grammar_generates_tree(grammar, expected)

    def test_delete_matches_reference(self, alphabet):
        doc = XmlNode("r", [XmlNode("e", [XmlNode("f")]) for _ in range(4)])
        grammar, tree = compressed(doc, alphabet)
        op = DeleteOp(1)
        delete(grammar, op.position)
        expected = apply_op_to_tree(deep_copy(tree), op, alphabet)
        grammar.validate()
        assert grammar_generates_tree(grammar, expected)

    def test_delete_collects_orphaned_rules(self, alphabet):
        # Deleting the only region that uses a rule must drop the rule.
        doc = XmlNode(
            "r",
            [XmlNode("special", [XmlNode("deep", [XmlNode("deeper")])])]
            + [XmlNode("e") for _ in range(8)],
        )
        grammar, _tree = compressed(doc, alphabet)
        rule_count_before = len(grammar)
        delete(grammar, 1)  # removes the 'special' subtree
        grammar.validate()
        assert len(grammar) <= rule_count_before

    def test_delete_document_root_rejected(self, alphabet):
        doc = XmlNode("r", [XmlNode("e")])
        grammar, _ = compressed(doc, alphabet)
        with pytest.raises(UpdateError, match="root"):
            delete(grammar, 0)


class TestOpSequences:
    @settings(max_examples=20, deadline=None)
    @given(xml_documents(max_elements=25), st.integers(0, 2**32 - 1))
    def test_random_op_sequence_matches_tree_replay(self, doc, seed):
        """Interleaved renames/inserts/deletes: grammar == tree replay."""
        alphabet = Alphabet()
        tree = encode_binary(doc, alphabet)
        grammar = tree_repair(tree, alphabet)
        reference = deep_copy(tree)
        rng = random.Random(seed)

        for _step in range(6):
            n = node_count(reference)
            kind = rng.choice(("rename", "insert", "delete"))
            if kind == "rename":
                # Pick a non-bottom node.
                from repro.trees.traversal import preorder_with_index

                candidates = [
                    i for i, node in preorder_with_index(reference)
                    if not node.symbol.is_bottom
                ]
                op = RenameOp(rng.choice(candidates), f"new{_step}")
            elif kind == "insert":
                fragment = encode_forest(
                    [XmlNode(rng.choice("abc"))], alphabet
                )
                op = InsertOp(rng.randrange(n), fragment)
            else:
                from repro.trees.traversal import preorder_with_index

                candidates = [
                    i for i, node in preorder_with_index(reference)
                    if not node.symbol.is_bottom and node.parent is not None
                ]
                if not candidates:
                    continue
                op = DeleteOp(rng.choice(candidates))
            reference = apply_op_to_tree(reference, op, alphabet)
            apply_op(grammar, op)
            grammar.validate()
            assert grammar_generates_tree(grammar, reference)

    def test_apply_ops_counts(self, alphabet):
        doc = XmlNode("r", [XmlNode("e") for _ in range(4)])
        grammar, _ = compressed(doc, alphabet)
        ops = [RenameOp(1, "a1"), RenameOp(3, "a2")]
        assert apply_ops(grammar, ops) == 2


class TestUpdateBlowupBehavior:
    def test_naive_updates_degrade_compression(self, alphabet):
        """Figures 4/5 top: updates without recompression grow the grammar."""
        doc = XmlNode("r", [XmlNode("e") for _ in range(256)])
        grammar, tree = compressed(doc, alphabet)
        compact = grammar.size
        rng = random.Random(7)
        for step in range(20):
            rename(grammar, 1 + 2 * rng.randrange(250), f"u{step}")
        assert grammar.size > compact

    def test_recompression_restores_compression(self, alphabet):
        """Figures 4/5 bottom: GrammarRePair removes the update overhead."""
        from repro.core.grammar_repair import grammar_repair
        from repro.repair.tree_repair import TreeRePair
        from repro.grammar.derivation import expand

        doc = XmlNode("r", [XmlNode("e") for _ in range(256)])
        grammar, _ = compressed(doc, alphabet)
        rng = random.Random(7)
        for step in range(10):
            rename(grammar, 1 + 2 * rng.randrange(250), "zz")
        inflated = grammar.size
        recompressed = grammar_repair(grammar)
        assert recompressed.size < inflated
        # Compare with compress-from-scratch (udc's compression step).
        scratch = TreeRePair().compress(expand(grammar), alphabet)
        assert recompressed.size <= scratch.size * 2 + 8
