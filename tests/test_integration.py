"""Cross-module integration tests: the full pipeline end to end."""

import random

import pytest

from repro.core.grammar_repair import GrammarRePair
from repro.dag.minimal_dag import dag_to_grammar
from repro.datasets.synthetic import make_corpus
from repro.grammar.navigation import (
    generates_same_tree,
    grammar_generates_tree,
)
from repro.grammar.serialize import format_grammar, parse_grammar
from repro.repair.tree_repair import TreeRePair
from repro.trees.binary import decode_binary, encode_binary
from repro.trees.node import deep_copy
from repro.trees.stats import document_stats
from repro.trees.symbols import Alphabet
from repro.trees.unranked import xml_equal
from repro.updates.grammar_updates import apply_ops
from repro.updates.operations import apply_op_to_tree
from repro.updates.udc import udc_recompress
from repro.updates.workload import generate_update_workload


CORPUS_NAMES = (
    "EXI-Weblog", "XMark", "EXI-Telecomp", "Treebank", "Medline", "NCBI",
)


class TestCompressionPipelines:
    @pytest.mark.parametrize("name", CORPUS_NAMES)
    def test_corpus_roundtrip_through_grammar_repair(self, name):
        doc = make_corpus(name, edges=700, seed=5)
        alphabet = Alphabet()
        binary = encode_binary(doc, alphabet)
        grammar = GrammarRePair().compress_tree(binary, alphabet)
        grammar.validate()
        assert grammar_generates_tree(grammar, binary)
        assert xml_equal(decode_binary(binary), doc)

    @pytest.mark.parametrize("name", ("XMark", "Medline"))
    def test_three_pipelines_generate_identical_trees(self, name):
        doc = make_corpus(name, edges=700, seed=5)
        alphabet = Alphabet()
        binary = encode_binary(doc, alphabet)
        via_tree = TreeRePair().compress(deep_copy(binary), alphabet,
                                         copy_input=False)
        via_gr = GrammarRePair().compress_tree(deep_copy(binary), alphabet,
                                               copy_input=False)
        via_dag = GrammarRePair().compress(
            dag_to_grammar(binary, alphabet), in_place=True
        )
        assert generates_same_tree(via_tree, via_gr)
        assert generates_same_tree(via_gr, via_dag)

    @pytest.mark.parametrize("name", ("EXI-Weblog", "Treebank"))
    def test_grammar_file_roundtrip_for_corpora(self, name, tmp_path):
        doc = make_corpus(name, edges=700, seed=5)
        alphabet = Alphabet()
        binary = encode_binary(doc, alphabet)
        grammar = GrammarRePair().compress_tree(binary, alphabet)
        path = tmp_path / "c.grammar"
        path.write_text(format_grammar(grammar))
        reparsed = parse_grammar(path.read_text())
        assert generates_same_tree(grammar, reparsed)


class TestUpdatePipelines:
    @pytest.mark.parametrize("name", ("XMark", "EXI-Weblog"))
    def test_workload_replay_grammar_equals_tree(self, name):
        doc = make_corpus(name, edges=600, seed=9)
        alphabet = Alphabet()
        binary = encode_binary(doc, alphabet)
        workload = generate_update_workload(
            binary, 40, alphabet, rng=random.Random(13)
        )
        grammar = GrammarRePair().compress_tree(workload.seed, alphabet)
        reference = deep_copy(workload.seed)
        apply_ops(grammar, workload.operations)
        for op in workload.operations:
            reference = apply_op_to_tree(reference, op, alphabet)
        grammar.validate()
        assert grammar_generates_tree(grammar, reference)
        assert grammar_generates_tree(grammar, binary)

    def test_update_recompress_matches_udc_result_quality(self):
        doc = make_corpus("EXI-Weblog", edges=1500, seed=2)
        alphabet = Alphabet()
        binary = encode_binary(doc, alphabet)
        workload = generate_update_workload(
            binary, 30, alphabet, rng=random.Random(3)
        )
        grammar = GrammarRePair().compress_tree(workload.seed, alphabet)
        apply_ops(grammar, workload.operations)
        incremental = GrammarRePair().compress(grammar)
        udc = udc_recompress(grammar, compressor="tree_repair")
        assert generates_same_tree(incremental, udc.grammar)
        # Virtually the same compression (paper: <1% overhead for typical
        # files); give pure-Python small-scale runs some slack.
        assert incremental.size <= 2.0 * udc.grammar.size + 10

    def test_interleaved_update_recompress_cycles(self):
        """Several update->recompress cycles stay correct and compact."""
        doc = make_corpus("Medline", edges=800, seed=4)
        alphabet = Alphabet()
        binary = encode_binary(doc, alphabet)
        workload = generate_update_workload(
            binary, 45, alphabet, rng=random.Random(8)
        )
        grammar = GrammarRePair().compress_tree(workload.seed, alphabet)
        reference = deep_copy(workload.seed)
        for start in range(0, 45, 15):
            chunk = workload.operations[start:start + 15]
            apply_ops(grammar, chunk)
            for op in chunk:
                reference = apply_op_to_tree(reference, op, alphabet)
            grammar = GrammarRePair().compress(grammar, in_place=True)
            grammar.validate()
            assert grammar_generates_tree(grammar, reference)
        assert grammar_generates_tree(grammar, binary)


class TestStatsConsistency:
    @pytest.mark.parametrize("name", CORPUS_NAMES)
    def test_grammar_counts_match_document_stats(self, name):
        """Element counts derived from the grammar match the document."""
        from repro.api import CompressedXml

        doc = make_corpus(name, edges=500, seed=6)
        stats = document_stats(doc)
        compressed = CompressedXml.from_document(doc)
        assert compressed.element_count == stats.elements
        assert compressed.edge_count == stats.edges
