"""Tests for the SLCF grammar model and its validation."""

import pytest
from hypothesis import given

from repro.grammar.slcf import Grammar, GrammarError
from repro.trees.builder import parse_term
from repro.trees.node import Node
from repro.trees.symbols import Alphabet, parameter_symbol

from tests.strategies import slcf_grammars


class TestConstruction:
    def test_from_tree_is_trivial_grammar(self, alphabet):
        tree = parse_term("f(a,b)", alphabet)
        grammar = Grammar.from_tree(tree, alphabet)
        grammar.validate()
        assert len(grammar) == 1
        assert grammar.rhs(grammar.start) is tree

    def test_start_must_be_rank0_nonterminal(self, alphabet):
        with pytest.raises(GrammarError):
            Grammar(alphabet, alphabet.terminal("a", 0))
        with pytest.raises(GrammarError):
            Grammar(alphabet, alphabet.nonterminal("A", 1))

    def test_bare_parameter_rhs_rejected(self, alphabet):
        S = alphabet.nonterminal("S", 0)
        A = alphabet.nonterminal("A", 1)
        grammar = Grammar(alphabet, S)
        with pytest.raises(GrammarError, match="parameter"):
            grammar.set_rule(A, Node(parameter_symbol(1)))

    def test_remove_start_rule_rejected(self, figure1_grammar):
        with pytest.raises(GrammarError):
            figure1_grammar.remove_rule(figure1_grammar.start)

    def test_rhs_of_unknown_nonterminal(self, figure1_grammar):
        missing = figure1_grammar.alphabet.nonterminal("ZZ", 0)
        with pytest.raises(GrammarError, match="no rule"):
            figure1_grammar.rhs(missing)


class TestMeasures:
    def test_size_counts_edges_of_all_rules(self, figure1_grammar):
        # S -> f(A(B,B),#): 5 nodes/4 edges; B -> A(#,#): 3/2;
        # A -> a(#,a(y1,y2)): 5/4.  Total 10 edges.
        assert figure1_grammar.size == 10

    def test_node_size(self, figure1_grammar):
        assert figure1_grammar.node_size == 13

    def test_len_counts_rules(self, figure1_grammar):
        assert len(figure1_grammar) == 3


class TestCopy:
    def test_copy_is_deep(self, figure1_grammar):
        clone = figure1_grammar.copy()
        clone.validate()
        original_rhs = figure1_grammar.rhs(figure1_grammar.start)
        clone_rhs = clone.rhs(clone.start)
        assert clone_rhs is not original_rhs
        assert clone_rhs.to_sexpr() == original_rhs.to_sexpr()

    def test_copy_mutation_does_not_leak(self, figure1_grammar):
        clone = figure1_grammar.copy()
        bottom = clone.alphabet.bottom()
        clone.set_rule(clone.start, Node(clone.alphabet.terminal("z", 0)))
        assert figure1_grammar.rhs(figure1_grammar.start).label == "f"

    @given(slcf_grammars())
    def test_copy_validates_property(self, grammar):
        grammar.copy().validate()


class TestValidation:
    def _base(self):
        alphabet = Alphabet()
        S = alphabet.nonterminal("S", 0)
        return alphabet, S, Grammar(alphabet, S)

    def test_missing_start_rule(self):
        _, _, grammar = self._base()
        with pytest.raises(GrammarError, match="start"):
            grammar.validate()

    def test_undefined_nonterminal_reference(self):
        alphabet, S, grammar = self._base()
        alphabet.nonterminal("A", 0)
        grammar.set_rule(S, parse_term("g(A)", alphabet, frozenset({"A"})))
        with pytest.raises(GrammarError, match="undefined"):
            grammar.validate()

    def test_start_referenced_in_rhs(self):
        alphabet, S, grammar = self._base()
        A = alphabet.nonterminal("A", 0)
        grammar.set_rule(S, parse_term("g(A)", alphabet, frozenset({"A"})))
        grammar.set_rule(A, parse_term("g(S)", alphabet, frozenset({"S"})))
        with pytest.raises(GrammarError, match="start"):
            grammar.validate()

    def test_parameters_must_be_exactly_linear(self):
        alphabet, S, grammar = self._base()
        A = alphabet.nonterminal("A", 2)
        grammar.set_rule(A, parse_term("f(y1,y1)", alphabet))
        grammar.set_rule(S, parse_term("A(a,a)", alphabet, frozenset({"A"})))
        with pytest.raises(GrammarError, match="parameters"):
            grammar.validate()

    def test_parameters_must_appear_in_preorder_order(self):
        alphabet, S, grammar = self._base()
        A = alphabet.nonterminal("A", 2)
        grammar.set_rule(A, parse_term("f(y2,y1)", alphabet))
        grammar.set_rule(S, parse_term("A(a,a)", alphabet, frozenset({"A"})))
        with pytest.raises(GrammarError, match="preorder"):
            grammar.validate()

    def test_recursion_detected(self):
        alphabet, S, grammar = self._base()
        A = alphabet.nonterminal("A", 0)
        B = alphabet.nonterminal("B", 0)
        nts = frozenset({"A", "B"})
        grammar.set_rule(S, parse_term("g(A)", alphabet, nts))
        grammar.set_rule(A, parse_term("g(B)", alphabet, nts))
        grammar.set_rule(B, parse_term("g(A)", alphabet, nts))
        with pytest.raises(GrammarError, match="recursive"):
            grammar.validate()

    def test_broken_parent_pointer_detected(self, figure1_grammar):
        rhs = figure1_grammar.rhs(figure1_grammar.start)
        rhs.children[0].parent = None  # corrupt deliberately
        with pytest.raises(GrammarError, match="parent"):
            figure1_grammar.validate()

    def test_figure1_grammar_is_valid(self, figure1_grammar):
        figure1_grammar.validate()

    @given(slcf_grammars())
    def test_random_grammars_validate(self, grammar):
        grammar.validate()
