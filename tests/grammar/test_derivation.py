"""Tests for inlining and decompression (Section II semantics)."""

import pytest
from hypothesis import given, settings

from repro.grammar.derivation import (
    DecompressionBudgetExceeded,
    expand,
    inline_all_references,
    inline_at,
)
from repro.grammar.navigation import grammar_generates_tree
from repro.grammar.slcf import Grammar
from repro.trees.builder import parse_term
from repro.trees.node import node_count
from repro.trees.traversal import find_first

from tests.conftest import make_string_grammar, string_of
from tests.strategies import slcf_grammars


class TestInlineAt:
    def test_paper_example_inline_b_into_s(self, figure1_grammar):
        """Inlining B at (S,3) gives S -> f(A(A(#,#),B),#) (Section II)."""
        g = figure1_grammar
        rhs = g.rhs(g.start)
        target = rhs.child(1).child(1)  # first B under A
        assert target.label == "B"
        inline_at(g, target)
        assert g.rhs(g.start).to_sexpr() == "f(A(A(#,#),B),#)"
        g.validate()

    def test_inline_substitutes_parameters(self, figure1_grammar):
        """A(#,#) => a(#, a(#,#)): parameters replaced by arguments."""
        g = figure1_grammar
        B = g.alphabet.get("B")
        target = g.rhs(B)  # the A(#,#) node, root of B's rule
        new_root, _ = inline_at(g, target)
        g.set_rule(B, new_root)
        assert g.rhs(B).to_sexpr() == "a(#,a(#,#))"
        g.validate()

    def test_inline_moves_argument_subtrees(self, figure1_grammar):
        g = figure1_grammar
        rhs = g.rhs(g.start)
        a_node = rhs.child(1)  # A(B,B)
        first_b = a_node.child(1)
        inline_at(g, a_node)
        # The same B node object must now appear inside the expansion.
        survivor = find_first(g.rhs(g.start), lambda n: n is first_b)
        assert survivor is first_b

    def test_inline_copy_map_identifies_rule_body_copies(self, figure1_grammar):
        g = figure1_grammar
        A = g.alphabet.get("A")
        template = g.rhs(A)
        inner_a = template.child(2)  # the nested a(y1,y2)
        rhs = g.rhs(g.start)
        _, copy_map = inline_at(g, rhs.child(1))
        assert copy_map[id(inner_a)].label == "a"
        assert copy_map[id(inner_a)] is not inner_a

    def test_inline_at_terminal_rejected(self, figure1_grammar):
        g = figure1_grammar
        from repro.grammar.slcf import GrammarError

        with pytest.raises(GrammarError):
            inline_at(g, g.rhs(g.start))  # root is terminal f

    def test_inline_preserves_generated_tree(self, figure1_grammar):
        g = figure1_grammar
        before = expand(g)
        target = g.rhs(g.start).child(1).child(2)  # second B
        inline_at(g, target)
        assert grammar_generates_tree(g, before)


class TestInlineAllReferences:
    def test_rule_disappears_and_tree_is_preserved(self, figure1_grammar):
        g = figure1_grammar
        before = expand(g)
        B = g.alphabet.get("B")
        count = inline_all_references(g, B)
        assert count == 2
        assert not g.has_rule(B)
        g.validate()
        assert grammar_generates_tree(g, before)

    def test_inline_rule_referenced_at_rule_root(self, figure1_grammar):
        g = figure1_grammar
        before = expand(g)
        A = g.alphabet.get("A")
        # B's RHS is rooted at an A node: inlining A must reroot B's rule.
        inline_all_references(g, A)
        g.validate()
        assert grammar_generates_tree(g, before)


class TestExpand:
    def test_figure1_tree(self, figure1_grammar):
        tree = expand(figure1_grammar)
        t = "a(#,a(#,#))"
        assert tree.to_sexpr() == f"f(a(#,a({t},{t})),#)"

    def test_expand_nonterminal_keeps_parameters(self, figure1_grammar):
        A = figure1_grammar.alphabet.get("A")
        val = expand(figure1_grammar, A)
        assert val.to_sexpr() == "a(#,a(y1,y2))"

    def test_string_grammar_g8(self):
        """G8 from Section III-A represents (ab)^8."""
        g = make_string_grammar(
            {"S": "BB", "B": "CC", "C": "DD", "D": "ab"}
        )
        assert string_of(g) == "ab" * 8

    def test_exponential_grammar_budget(self):
        """Gexp generates a^1024; a tight budget must trip."""
        rules = {"S": "A1A1"}
        for i in range(1, 10):
            rules[f"A{i}"] = f"A{i+1}A{i+1}"
        rules["A10"] = "a"
        g = make_string_grammar(rules)
        with pytest.raises(DecompressionBudgetExceeded):
            expand(g, budget=100)
        tree = expand(g, budget=5000)
        assert node_count(tree) == 1025  # 1024 letters + terminating #

    def test_grammar_size_logarithmic_in_tree(self):
        rules = {"S": "A1A1"}
        for i in range(1, 10):
            rules[f"A{i}"] = f"A{i+1}A{i+1}"
        rules["A10"] = "a"
        g = make_string_grammar(rules)
        assert g.size == 21  # the paper: |Gexp| = 21

    @settings(max_examples=30)
    @given(slcf_grammars())
    def test_expand_matches_streaming(self, grammar):
        tree = expand(grammar, budget=100_000)
        assert grammar_generates_tree(grammar, tree)
