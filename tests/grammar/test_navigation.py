"""Tests for decompression-free navigation over the generated tree."""

import pytest
from hypothesis import given, settings

from repro.grammar.derivation import expand
from repro.grammar.navigation import (
    generates_same_tree,
    grammar_generates_tree,
    resolve_preorder_path,
    stream_preorder,
)
from repro.grammar.properties import generated_node_count
from repro.grammar.serialize import parse_grammar
from repro.trees.node import node_count
from repro.trees.traversal import preorder

from tests.conftest import make_string_grammar
from tests.strategies import slcf_grammars


class TestStreaming:
    def test_stream_matches_figure1(self, figure1_grammar):
        names = [s.name for s in stream_preorder(figure1_grammar)]
        tree = expand(figure1_grammar)
        assert names == [n.symbol.name for n in preorder(tree)]

    def test_stream_is_lazy_on_exponential_grammars(self):
        rules = {"S": "A1A1"}
        for i in range(1, 17):
            rules[f"A{i}"] = f"A{i+1}A{i+1}"
        rules["A17"] = "a"
        g = make_string_grammar(rules)
        # 2^17 leaves; take only the first few symbols.
        stream = stream_preorder(g)
        first = [next(stream).name for _ in range(5)]
        assert first == ["a"] * 5

    @settings(max_examples=30)
    @given(slcf_grammars())
    def test_stream_matches_expansion(self, grammar):
        tree = expand(grammar, budget=100_000)
        streamed = [s.name for s in stream_preorder(grammar)]
        assert streamed == [n.symbol.name for n in preorder(tree)]


class TestEquality:
    def test_same_grammar_generates_same_tree(self, figure1_grammar):
        assert generates_same_tree(figure1_grammar, figure1_grammar.copy())

    def test_different_compressions_of_same_tree_are_equal(self):
        a = parse_grammar("start S\nS -> f(a(b,b),a(b,b))\n")
        b = parse_grammar(
            "start S\nS -> f(A,A)\nA -> a(B,B)\nB -> b\n"
        )
        assert generates_same_tree(a, b)

    def test_inequality_on_label(self):
        a = parse_grammar("start S\nS -> f(a,b)\n")
        b = parse_grammar("start S\nS -> f(a,c)\n")
        assert not generates_same_tree(a, b)

    def test_inequality_on_size(self):
        a = parse_grammar("start S\nS -> g(a)\n")
        b = parse_grammar("start S\nS -> g(g(a))\n")
        assert not generates_same_tree(a, b)
        assert not generates_same_tree(b, a)

    def test_grammar_generates_tree(self, figure1_grammar):
        tree = expand(figure1_grammar)
        assert grammar_generates_tree(figure1_grammar, tree)
        tree.children[1].symbol = figure1_grammar.alphabet.terminal("zz", 0)
        assert not grammar_generates_tree(figure1_grammar, tree)


class TestResolvePreorderPath:
    def _check_all_indices(self, grammar):
        """Replaying every path must land on the right label."""
        tree = expand(grammar, budget=200_000)
        labels = [n.symbol.name for n in preorder(tree)]
        n_rules = len(grammar.rules)
        for index, expected in enumerate(labels):
            steps = resolve_preorder_path(grammar, index)
            assert steps, f"no steps for index {index}"
            target = steps[-1]
            assert not target.enters_rule
            assert target.node.symbol.name == expected, (
                f"index {index}: resolved {target.node.symbol.name}, "
                f"expected {expected}"
            )
            # Lemma 1's mechanism: each rule is entered at most once.
            assert sum(1 for s in steps if s.enters_rule) <= n_rules

    def test_figure1_all_indices(self, figure1_grammar):
        self._check_all_indices(figure1_grammar)

    def test_grammar1_all_indices(self, grammar1_fragment):
        self._check_all_indices(grammar1_fragment)

    def test_paper_position_333(self):
        """Section III-A: position 333 (1-based) of a^1024 under Gexp.

        The letter is produced after the derivation
        A2 A4 A7 A8 a A10 A9 A6 A5 A3 A1 -- our check: the resolved node is
        a terminal 'a', and the path enters at most one rule per level.
        """
        rules = {"S": "A1A1"}
        for i in range(1, 10):
            rules[f"A{i}"] = f"A{i+1}A{i+1}"
        rules["A10"] = "a"
        g = make_string_grammar(rules)
        steps = resolve_preorder_path(g, 332)  # 0-based
        assert steps[-1].node.symbol.name == "a"
        assert sum(1 for s in steps if s.enters_rule) <= len(g.rules)

    def test_out_of_range(self, figure1_grammar):
        total = generated_node_count(figure1_grammar)
        with pytest.raises(IndexError):
            resolve_preorder_path(figure1_grammar, total)
        with pytest.raises(IndexError):
            resolve_preorder_path(figure1_grammar, -1)

    @settings(max_examples=25)
    @given(slcf_grammars(max_rules=4, rule_size=6))
    def test_resolution_property(self, grammar):
        self._check_all_indices(grammar)
