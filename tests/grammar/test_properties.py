"""Tests for refs, usage, orders, and the size(A,i) segments."""

import pytest
from hypothesis import given, settings

from repro.grammar.derivation import expand
from repro.grammar.properties import (
    anti_sl_order,
    collect_garbage,
    dead_nonterminals,
    generated_node_count,
    generated_size_of_subtree,
    parameter_segments,
    reference_counts,
    references,
    sl_order,
    usage,
)
from repro.grammar.slcf import Grammar
from repro.trees.builder import parse_term
from repro.trees.node import node_count
from repro.trees.symbols import Alphabet

from tests.conftest import make_string_grammar
from tests.strategies import slcf_grammars


class TestReferences:
    def test_reference_lists(self, figure1_grammar):
        g = figure1_grammar
        refs = references(g)
        A = g.alphabet.get("A")
        B = g.alphabet.get("B")
        assert len(refs[A]) == 2  # once from S, once from B
        assert {rule.name for rule, _ in refs[A]} == {"S", "B"}
        assert len(refs[B]) == 2  # twice from S
        assert len(refs[g.start]) == 0

    def test_reference_counts_match_lists(self, figure1_grammar):
        refs = references(figure1_grammar)
        counts = reference_counts(figure1_grammar)
        assert counts == {head: len(nodes) for head, nodes in refs.items()}

    @given(slcf_grammars())
    def test_counts_property(self, grammar):
        refs = references(grammar)
        counts = reference_counts(grammar)
        for head in grammar.rules:
            assert counts[head] == len(refs[head])


class TestUsage:
    def test_figure1_usage(self, figure1_grammar):
        g = figure1_grammar
        u = usage(g)
        assert u[g.start] == 1
        assert u[g.alphabet.get("B")] == 2
        # A is used once directly by S and once by each of the two Bs.
        assert u[g.alphabet.get("A")] == 3

    def test_exponential_usage(self):
        rules = {"S": "A1A1"}
        for i in range(1, 10):
            rules[f"A{i}"] = f"A{i+1}A{i+1}"
        rules["A10"] = "a"
        g = make_string_grammar(rules)
        u = usage(g)
        assert u[g.alphabet.get("A10")] == 1024

    def test_paper_usage_example(self):
        """Section IV-A: usage(A) = 2*usage(S) + usage(C) = 5."""
        alphabet = Alphabet()
        S = alphabet.nonterminal("S", 0)
        C = alphabet.nonterminal("C", 0)
        A = alphabet.nonterminal("A", 0)
        nts = frozenset({"S", "C", "A"})
        g = Grammar(alphabet, S)
        # S calls A twice and C three times; C calls A once.
        g.set_rule(S, parse_term("f(g(g(g(A))),f(A,f(C,f(C,C))))", alphabet, nts))
        g.set_rule(C, parse_term("g(A)", alphabet, nts))
        g.set_rule(A, parse_term("a", alphabet, nts))
        u = usage(g)
        assert u[C] == 3
        assert u[A] == 2 * u[S] + u[C] == 5

    @settings(max_examples=30)
    @given(slcf_grammars())
    def test_usage_counts_expansion_copies(self, grammar):
        """usage(Q) equals how many times Q's body materializes in valG."""
        u = usage(grammar)
        tree = expand(grammar, budget=100_000)
        # Count the root terminal... instead, verify via node counts:
        # |valG(S)| = sum over rules of usage * own terminal/param-free node
        # contribution is complex; a robust invariant: usage of start is 1.
        assert u[grammar.start] == 1
        for head, count in u.items():
            assert count >= 0


class TestOrders:
    def test_anti_sl_puts_callees_first(self, figure1_grammar):
        g = figure1_grammar
        order = anti_sl_order(g)
        names = [s.name for s in order]
        assert names.index("A") < names.index("B")  # B calls A
        assert names.index("B") < names.index("S")
        assert names.index("A") < names.index("S")

    def test_sl_order_is_reverse(self, figure1_grammar):
        assert sl_order(figure1_grammar) == list(
            reversed(anti_sl_order(figure1_grammar))
        )

    @given(slcf_grammars())
    def test_topological_property(self, grammar):
        order = anti_sl_order(grammar)
        position = {head: i for i, head in enumerate(order)}
        refs = references(grammar)
        for callee, occurrences in refs.items():
            for caller, _node in occurrences:
                assert position[callee] < position[caller]


class TestParameterSegments:
    def test_paper_example(self):
        """valG(A) = f(y1, g(h(a,y2), g(a,y3))) has sizes 1,3,2,0."""
        alphabet = Alphabet()
        S = alphabet.nonterminal("S", 0)
        A = alphabet.nonterminal("A", 3)
        nts = frozenset({"S", "A"})
        g = Grammar(alphabet, S)
        g.set_rule(A, parse_term("f(y1,g(h(a,y2),g(a,y3)))", alphabet, nts))
        g.set_rule(S, parse_term("A(b,b,b)", alphabet, nts))
        segments = parameter_segments(g)
        assert segments[A] == [1, 3, 2, 0]

    def test_segments_through_nonterminal_calls(self, figure1_grammar):
        g = figure1_grammar
        segments = parameter_segments(g)
        A = g.alphabet.get("A")
        B = g.alphabet.get("B")
        # valG(A) = a(#, a(y1, y2)): 3 nodes before y1, 0 between, 0 after.
        assert segments[A] == [3, 0, 0]
        # valG(B) = a(#,a(#,#)): 5 nodes.
        assert segments[B] == [5]
        # valG(S) = Figure 1's binary tree: 15 nodes.
        assert segments[g.start] == [15]

    def test_generated_node_count(self, figure1_grammar):
        assert generated_node_count(figure1_grammar) == 15

    def test_generated_size_of_subtree(self, figure1_grammar):
        g = figure1_grammar
        segments = parameter_segments(g)
        rhs = g.rhs(g.start)
        a_node = rhs.child(1)  # A(B,B) generates 3 + 5 + 5 nodes
        assert generated_size_of_subtree(a_node, segments) == 13

    @settings(max_examples=40)
    @given(slcf_grammars())
    def test_segments_sum_equals_expansion(self, grammar):
        tree = expand(grammar, budget=100_000)
        assert generated_node_count(grammar) == node_count(tree)


class TestGarbage:
    def test_dead_rule_detection_and_collection(self, figure1_grammar):
        g = figure1_grammar
        alphabet = g.alphabet
        dead = alphabet.nonterminal("DEAD", 0)
        g.set_rule(dead, parse_term("a(#,#)", alphabet))
        assert dead_nonterminals(g) == [dead]
        assert collect_garbage(g) == 1
        assert not g.has_rule(dead)
        g.validate()

    def test_garbage_collection_is_idempotent(self, figure1_grammar):
        assert collect_garbage(figure1_grammar) == 0
