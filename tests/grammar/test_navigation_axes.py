"""Tests for document-axis navigation: ``stream_elements`` and the
``GrammarIndex`` primitives (``parent_of`` / ``depth_of`` / ``first_child``
/ ``next_sibling`` / ``children``).

Ground truth is the decompressed tree; ``stream_elements`` is itself
validated against it, then serves as the streaming oracle the indexed
primitives (one O(depth) descent each) must agree with.
"""

import pytest
from hypothesis import given, settings

from repro.api import CompressedXml
from repro.grammar.navigation import stream_elements
from repro.trees.unranked import XmlNode

from tests.strategies import update_scripts, xml_documents
from tests.grammar.test_index import replay_script


def naive_axes(root):
    """(tag, parent, depth) per element plus children lists, preorder."""
    rows = []
    children = []
    stack = [(root, None, 0)]
    # Explicit preorder with an index counter, children resolved after.
    order = []
    positions = {}
    walk = [(root, None, 0)]
    while walk:
        node, parent, depth = walk.pop()
        index = len(order)
        positions[id(node)] = index
        order.append(node)
        rows.append((node.tag, parent, depth))
        for child in reversed(node.children):
            walk.append((child, index, depth + 1))
    for node in order:
        children.append([positions[id(child)] for child in node.children])
    return rows, children


def assert_axes_match_naive(doc):
    plain = doc.to_document()
    rows, children = naive_axes(plain)
    assert list(stream_elements(doc.grammar)) == [
        (index, tag, parent, depth)
        for index, (tag, parent, depth) in enumerate(rows)
    ]
    index = doc.index
    for element, (tag, parent, depth) in enumerate(rows):
        assert index.parent_of(element) == parent
        assert index.depth_of(element) == depth
        kids = children[element]
        assert list(index.children(element)) == kids
        assert index.first_child(element) == (kids[0] if kids else None)
    # next_sibling: derived from the parent's child lists.
    for kids in children:
        for left, right in zip(kids, kids[1:]):
            assert index.next_sibling(left) == right
        if kids:
            assert index.next_sibling(kids[-1]) is None
    assert index.next_sibling(0) is None  # the root has no siblings


class TestFixtures:
    def test_small_document(self):
        doc = CompressedXml.from_xml(
            "<a><b><x/><y><z/></y></b><c/><d><e/></d></a>"
        )
        assert_axes_match_naive(doc)
        assert doc.parent_of(0) is None
        assert doc.depth_of(0) == 0
        assert doc.parent_of(4) == 3
        assert doc.depth_of(4) == 3
        assert doc.first_child(1) == 2
        assert doc.next_sibling(1) == 5
        assert list(doc.children(0)) == [1, 5, 6]

    def test_flat_list(self):
        doc = CompressedXml.from_xml("<log>" + "<e/>" * 100 + "</log>")
        assert list(doc.children(0)) == list(range(1, 101))
        assert doc.parent_of(57) == 0
        assert doc.next_sibling(57) == 58
        assert doc.first_child(57) is None

    def test_deep_chain(self):
        doc = CompressedXml.from_xml(
            "<a>" * 1 + "<b>" * 0 + "".join(f"<t{i}>" for i in range(30))
            + "".join(f"</t{i}>" for i in reversed(range(30))) + "</a>"
        )
        last = doc.element_count - 1
        assert doc.depth_of(last) == last
        assert doc.parent_of(last) == last - 1
        assert doc.first_child(last) is None

    def test_out_of_range_and_negative(self):
        doc = CompressedXml.from_xml("<a><b/></a>")
        for probe in (doc.parent_of, doc.depth_of, doc.first_child,
                      doc.next_sibling):
            with pytest.raises(IndexError):
                probe(2)
            with pytest.raises(IndexError):
                probe(-1)
        with pytest.raises(IndexError):
            list(doc.children(5))

    def test_stream_elements_rejects_non_binary_terminals(
        self, grammar1_fragment
    ):
        # grammar1_fragment generates g/1 and b/2-shaped terminals -- not
        # an FCNS document encoding.
        with pytest.raises(ValueError):
            list(stream_elements(grammar1_fragment))


class TestProperties:
    @given(xml_documents(max_elements=30))
    @settings(max_examples=30, deadline=None)
    def test_axes_match_naive(self, tree):
        assert_axes_match_naive(CompressedXml.from_document(tree))

    @given(xml_documents(max_elements=20), update_scripts(max_ops=6))
    @settings(max_examples=15, deadline=None)
    def test_axes_match_naive_after_updates(self, tree, script):
        doc = CompressedXml.from_document(tree)
        for _ in replay_script(doc, script):
            assert_axes_match_naive(doc)
