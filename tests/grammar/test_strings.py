"""Tests for the string-grammar embedding (Section III examples)."""

import pytest

from repro.grammar.slcf import GrammarError
from repro.grammar.strings import (
    gn_family_grammar,
    grammar_string,
    string_grammar,
)


class TestEmbedding:
    def test_gw_example(self):
        """Section I: Gw = {S -> BBa, B -> AA, A -> ab} has size 7."""
        g = string_grammar({"S": "BBa", "B": "AA", "A": "ab"})
        assert grammar_string(g) == "ababababa"
        # Exactly the paper's size-7 grammar: the tree embedding's edge
        # count coincides with the string measure (sum of RHS lengths).
        assert g.size == 7

    def test_g8(self):
        g = string_grammar({"S": "BB", "B": "CC", "C": "DD", "D": "ab"})
        assert grammar_string(g) == "ab" * 8

    def test_single_rule(self):
        g = string_grammar({"S": "hello"})
        assert grammar_string(g) == "hello"

    def test_longest_head_name_wins(self):
        # 'A1' must tokenize as the nonterminal A1, not 'A' then '1'.
        g = string_grammar({"S": "A1A1", "A1": "xy", "A": "zz"})
        assert grammar_string(g) == "xyxy"

    def test_missing_start_rejected(self):
        with pytest.raises(GrammarError):
            string_grammar({"B": "ab"})

    def test_ranks(self):
        g = string_grammar({"S": "Ba", "B": "ab"})
        assert g.start.rank == 0
        assert g.alphabet.get("B").rank == 1
        assert g.alphabet.get("a").rank == 1


class TestGnFamily:
    def test_generated_string(self):
        g = gn_family_grammar(3)
        # a (ba)^(2^4) b == (ab)^(2^4 + 1)
        assert grammar_string(g) == "ab" * 17

    def test_size_is_linear_in_n(self):
        sizes = [gn_family_grammar(n).size for n in (2, 4, 6)]
        assert sizes[1] - sizes[0] == sizes[2] - sizes[1] == 4

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            gn_family_grammar(-1)

    def test_recompression_finds_doubling(self):
        """The Figure 3 claim: G_n recompresses to the B-family shape."""
        from repro.core.grammar_repair import grammar_repair

        g = gn_family_grammar(6)
        out = grammar_repair(g)
        assert grammar_string(out) == grammar_string(g)
        bodies = {rhs.to_sexpr() for rhs in out.rules.values()}
        assert "a(b(y1))" in bodies  # B0 -> ab
        assert out.size <= g.size
