"""Tests for the grammar text format."""

import pytest
from hypothesis import given, settings

from repro.grammar.navigation import generates_same_tree
from repro.grammar.serialize import (
    GrammarFormatError,
    format_grammar,
    parse_grammar,
)

from tests.strategies import slcf_grammars

FIGURE1_TEXT = """\
start S
S -> f(A(B,B),#)
A/2 -> a(#,a(y1,y2))
B -> A(#,#)
"""


class TestParsing:
    def test_parse_figure1(self):
        g = parse_grammar(FIGURE1_TEXT)
        assert g.start.name == "S"
        assert len(g) == 3
        assert g.alphabet.get("A").rank == 2

    def test_comments_and_blank_lines(self):
        text = "; header comment\n\nstart S\nS -> a ; trailing\n"
        g = parse_grammar(text)
        assert g.rhs(g.start).label == "a"

    def test_missing_start_directive(self):
        with pytest.raises(GrammarFormatError, match="start"):
            parse_grammar("S -> a\n")

    def test_start_without_rule(self):
        with pytest.raises(GrammarFormatError, match="no rule"):
            parse_grammar("start T\nS -> a\n")

    def test_duplicate_rule(self):
        with pytest.raises(GrammarFormatError, match="duplicate"):
            parse_grammar("start S\nS -> a\nS -> b\n")

    def test_duplicate_rule_reports_both_lines(self):
        text = "start S\nS -> A\nA -> a\n; gap\nA -> b\n"
        with pytest.raises(
            GrammarFormatError,
            match=r"line 5: duplicate rule for 'A' \(first defined on "
                  r"line 3\)",
        ):
            parse_grammar(text)

    def test_duplicate_rule_with_conflicting_ranks(self):
        # Before the up-front duplicate pass this surfaced as a
        # confusing alphabet rank-clash error on the second head.
        text = "start S\nS -> A(a,b)\nA/2 -> f(y1,y2)\nA -> c\n"
        with pytest.raises(GrammarFormatError, match="duplicate rule"):
            parse_grammar(text)

    def test_duplicate_start_directive(self):
        with pytest.raises(GrammarFormatError, match="duplicate start"):
            parse_grammar("start S\nstart S\nS -> a\n")

    def test_unparseable_line(self):
        with pytest.raises(GrammarFormatError, match="cannot parse"):
            parse_grammar("start S\nS => a\n")

    def test_invalid_grammar_rejected(self):
        # Parameters out of preorder order.
        text = "start S\nS -> A(a,b)\nA/2 -> f(y2,y1)\n"
        with pytest.raises(GrammarFormatError):
            parse_grammar(text)

    def test_rank_mismatch_rejected(self):
        text = "start S\nS -> A(a)\nA/2 -> f(y1,y2)\n"
        with pytest.raises(GrammarFormatError):
            parse_grammar(text)


class TestFormatting:
    def test_format_puts_start_rule_first(self, figure1_grammar):
        text = format_grammar(figure1_grammar)
        lines = text.strip().splitlines()
        assert lines[0] == "start S"
        assert lines[1].startswith("S ->")

    def test_rank_annotations_only_for_positive_rank(self, figure1_grammar):
        text = format_grammar(figure1_grammar)
        assert "A/2 ->" in text
        assert "B ->" in text and "B/0" not in text

    def test_roundtrip_figure1(self, figure1_grammar):
        text = format_grammar(figure1_grammar)
        reparsed = parse_grammar(text)
        assert generates_same_tree(figure1_grammar, reparsed)

    @settings(max_examples=40)
    @given(slcf_grammars())
    def test_roundtrip_property(self, grammar):
        reparsed = parse_grammar(format_grammar(grammar))
        assert generates_same_tree(grammar, reparsed)
        # And the rendered text is stable under a second roundtrip.
        assert format_grammar(reparsed) == format_grammar(grammar)
