"""Tests for the persistent grammar index (repro.grammar.index).

The correctness bar is the naive recomputation on the streamed preorder of
``valG(S)``: after arbitrary interleavings of updates, every index answer
must match what a full ``stream_preorder`` walk reports.
"""

import pytest
from hypothesis import given, settings

from repro.api import CompressedXml
from repro.grammar.index import GrammarIndex
from repro.grammar.navigation import resolve_preorder_path, stream_preorder
from repro.grammar.properties import parameter_segments
from repro.grammar.slcf import Grammar
from repro.trees.builder import parse_term
from repro.trees.symbols import Alphabet
from repro.trees.unranked import XmlNode

from tests.strategies import slcf_grammars, update_scripts, xml_documents


# ----------------------------------------------------------------------
# naive reference implementations (the pre-index streaming code paths)
# ----------------------------------------------------------------------

def naive_element_count(grammar):
    return sum(1 for s in stream_preorder(grammar) if not s.is_bottom)


def naive_elements(grammar):
    """List of (binary preorder index, symbol) per element, in order."""
    return [
        (position, symbol)
        for position, symbol in enumerate(stream_preorder(grammar))
        if not symbol.is_bottom
    ]


def naive_end_of_children(grammar, element_index):
    """The old list-materializing child-list-terminator walk."""
    stream = list(stream_preorder(grammar))
    start = naive_elements(grammar)[element_index][0]

    def subtree_end(position):
        depth = 0
        index = position
        while True:
            depth += stream[index].rank - 1
            index += 1
            if depth < 0:
                return index

    position = start + 1
    while not stream[position].is_bottom:
        position = subtree_end(position + 1)
    return position


def assert_index_matches_stream(doc):
    """Every index answer equals the naive streamed recomputation."""
    grammar = doc.grammar
    index = doc.index
    elements = naive_elements(grammar)
    assert index.element_count == len(elements)
    assert index.node_count == sum(1 for _ in stream_preorder(grammar))
    for element_index, (position, symbol) in enumerate(elements):
        assert index.preorder_of_element(element_index) == position
        assert index.tag_of(element_index) == symbol.name
        assert doc._binary_index_of_element(element_index) == position
    with pytest.raises(IndexError):
        index.preorder_of_element(len(elements))
    with pytest.raises(IndexError):
        index.tag_of(len(elements))


# ----------------------------------------------------------------------
# static correctness on fixtures and random grammars
# ----------------------------------------------------------------------

class TestStaticQueries:
    def test_counts_on_figure1(self, figure1_grammar):
        index = GrammarIndex(figure1_grammar)
        assert index.node_count == sum(
            1 for _ in stream_preorder(figure1_grammar)
        )
        assert index.element_count == naive_element_count(figure1_grammar)

    def test_addressing_on_figure1(self, figure1_grammar):
        index = GrammarIndex(figure1_grammar)
        for i, (position, symbol) in enumerate(naive_elements(figure1_grammar)):
            assert index.preorder_of_element(i) == position
            assert index.tag_of(i) == symbol.name

    def test_negative_index_rejected(self, figure1_grammar):
        index = GrammarIndex(figure1_grammar)
        with pytest.raises(IndexError):
            index.preorder_of_element(-1)

    def test_segments_view_matches_parameter_segments(self, figure1_grammar):
        index = GrammarIndex(figure1_grammar)
        expected = parameter_segments(figure1_grammar)
        view = index.segments()
        for head in figure1_grammar.rules:
            assert view[head] == expected[head]

    @given(slcf_grammars())
    @settings(max_examples=40, deadline=None)
    def test_random_grammars_match_stream(self, grammar):
        index = GrammarIndex(grammar)
        elements = naive_elements(grammar)
        assert index.element_count == len(elements)
        for i, (position, symbol) in enumerate(elements):
            assert index.preorder_of_element(i) == position
            assert index.tag_of(i) == symbol.name

    @given(slcf_grammars())
    @settings(max_examples=40, deadline=None)
    def test_resolve_element_steps_match_navigation(self, grammar):
        """The derivation path recorded during the element descent must be
        node-for-node the path resolve_preorder_path finds, so isolation
        can replay it without re-resolving."""
        index = GrammarIndex(grammar)
        for i in range(index.element_count):
            position, steps = index.resolve_element(i)
            expected = resolve_preorder_path(grammar, position)
            assert len(steps) == len(expected)
            for ours, reference in zip(steps, expected):
                assert ours.node is reference.node
                assert ours.enters_rule == reference.enters_rule

    @given(slcf_grammars())
    @settings(max_examples=40, deadline=None)
    def test_resolve_preorder_matches_navigation(self, grammar):
        """The indexed node-preorder resolver (the append path's resolver:
        child-list terminators are nodes, not elements) must produce
        node-for-node the steps of the self-contained segment walk, at
        every position of the generated tree."""
        index = GrammarIndex(grammar)
        total = index.node_count
        for position in range(total):
            steps = index.resolve_preorder(position)
            expected = resolve_preorder_path(grammar, position)
            assert len(steps) == len(expected)
            for ours, reference in zip(steps, expected):
                assert ours.node is reference.node
                assert ours.enters_rule == reference.enters_rule
        with pytest.raises(IndexError):
            index.resolve_preorder(total)
        with pytest.raises(IndexError):
            index.resolve_preorder(-1)


# ----------------------------------------------------------------------
# invalidation: direct rule mutation through the observer channel
# ----------------------------------------------------------------------

class TestInvalidation:
    def test_set_rule_invalidates_dependents(self):
        alphabet = Alphabet()
        S = alphabet.nonterminal("S", 0)
        A = alphabet.nonterminal("A", 0)
        nts = frozenset({"S", "A"})
        grammar = Grammar(alphabet, S)
        grammar.set_rule(S, parse_term("f(A,A)", alphabet, nts))
        grammar.set_rule(A, parse_term("a(#,#)", alphabet, nts))
        index = GrammarIndex(grammar)
        assert index.element_count == 3
        # Growing A's rule must flow through to the cached start totals.
        grammar.set_rule(A, parse_term("a(a(#,#),#)", alphabet, nts))
        assert index.element_count == 5
        assert index.element_count == naive_element_count(grammar)

    def test_remove_rule_invalidates(self):
        alphabet = Alphabet()
        S = alphabet.nonterminal("S", 0)
        A = alphabet.nonterminal("A", 0)
        nts = frozenset({"S", "A"})
        grammar = Grammar(alphabet, S)
        grammar.set_rule(S, parse_term("f(A,#)", alphabet, nts))
        grammar.set_rule(A, parse_term("a(#,#)", alphabet, nts))
        index = GrammarIndex(grammar)
        assert index.element_count == 2
        grammar.set_rule(S, parse_term("f(a(#,#),#)", alphabet, nts))
        grammar.remove_rule(A)
        assert index.element_count == 2
        assert index.tag_of(1) == "a"

    def test_detach_stops_notifications(self, figure1_grammar):
        index = GrammarIndex(figure1_grammar)
        index.detach()
        assert index._grammar._observers == []


# ----------------------------------------------------------------------
# the paper's workload: random update interleavings on CompressedXml
# ----------------------------------------------------------------------

def replay_script(doc, script):
    """Apply one (kind, fraction, tag) script entry at a time, yielding
    after each so the caller can interpose checks."""
    for kind, fraction, tag in script:
        count = doc.element_count
        if kind == "rename":
            doc.rename(int(fraction * count), tag)
        elif kind == "insert" and count > 1:
            # Before the root would create a forest; stay below it.
            doc.insert(1 + int(fraction * (count - 1)), XmlNode(tag))
        elif kind == "append":
            doc.append_child(int(fraction * count),
                             XmlNode(tag, [XmlNode(tag)]))
        elif kind == "delete" and count > 1:
            doc.delete(1 + int(fraction * (count - 1)))
        elif kind == "recompress":
            doc.recompress()
        yield kind


class TestUpdateInterleavings:
    @given(xml_documents(max_elements=20), update_scripts(max_ops=8))
    @settings(max_examples=25, deadline=None)
    def test_index_matches_stream_after_every_update(self, tree, script):
        doc = CompressedXml.from_document(tree)
        assert_index_matches_stream(doc)
        for _ in replay_script(doc, script):
            assert_index_matches_stream(doc)

    @given(xml_documents(max_elements=15), update_scripts(max_ops=6))
    @settings(max_examples=15, deadline=None)
    def test_end_of_children_matches_naive(self, tree, script):
        doc = CompressedXml.from_document(tree)
        for _ in replay_script(doc, script):
            count = doc.element_count
            for element_index in range(count):
                assert doc._end_of_children_position(element_index) == \
                    naive_end_of_children(doc.grammar, element_index)

    @given(xml_documents(max_elements=20), update_scripts(max_ops=6))
    @settings(max_examples=15, deadline=None)
    def test_tag_windows_match_stream_after_updates(self, tree, script):
        """The indexed range iterator agrees with the full tag stream at
        every window, across arbitrary update interleavings."""
        doc = CompressedXml.from_document(tree)
        for _ in replay_script(doc, script):
            full = list(doc.tags())
            count = doc.element_count
            assert len(full) == count
            windows = [(0, count), (0, 1), (count - 1, count),
                       (count // 3, 2 * count // 3 + 1)]
            for start, stop in windows:
                assert list(doc.tags(start, stop)) == full[start:stop]
            assert list(doc.tags(count // 2)) == full[count // 2:]

    @given(xml_documents(max_elements=20), update_scripts(max_ops=8))
    @settings(max_examples=15, deadline=None)
    def test_updates_equal_reference_document(self, tree, script):
        """The indexed update path produces the same document as a plain
        XmlNode interpretation of the same script."""
        doc = CompressedXml.from_document(tree)
        for kind in replay_script(doc, script):
            pass
        # Round-trip through XML to confirm the grammar stayed coherent.
        assert doc.element_count == naive_element_count(doc.grammar)
        assert doc.to_xml()  # decompresses without error
