"""Spine sharding: shard invariants, balance, and behavioral stability.

Three layers of guarantees:

* **unit**: splitting preserves the generated tree, keeps every spine
  rule inside the ``2 * width`` budget, keeps the shard hierarchy
  balanced (polylog reference depth), and merges underweight shards;
* **property** (the ISSUE's shard-invariant tests): a sharded
  ``CompressedXml`` and an unsharded twin stay observationally equal
  across random ``update_scripts`` / ``batch_scripts``, ``to_document``
  is identical before and after every ``reshard()``, and select / tags /
  navigation answers are stable across shard splits;
* **index locality**: splits and merges are local observer events --
  the structural and label indexes never invalidate wholesale.
"""

import pytest
from hypothesis import given, settings

from repro.api import CompressedXml
from repro.grammar.navigation import generates_same_tree, stream_elements
from repro.grammar.sharding import MIN_SHARD_WIDTH, ShardManager
from repro.trees.unranked import XmlNode

from tests.strategies import (
    batch_scripts,
    shard_widths,
    update_scripts,
    xml_documents,
)
from tests.updates.test_batch import concretize
from tests.grammar.test_index import replay_script

CHAIN = "<log>" + "<e><a/><b/></e>" * 200 + "</log>"


def make_pair(xml, width, **kwargs):
    return (
        CompressedXml.from_xml(xml, shard_width=width, **kwargs),
        CompressedXml.from_xml(xml, **kwargs),
    )


class TestSplitting:
    def test_split_preserves_tree_and_bounds_width(self):
        doc = CompressedXml.from_xml(CHAIN, compress=False)
        reference = doc.grammar.copy()
        manager = ShardManager(doc.grammar, width=16)
        assert manager.shard_count > 5
        assert manager.max_spine_width() <= 2 * 16
        assert generates_same_tree(doc.grammar, reference)
        manager.check_invariants()
        doc.grammar.validate()

    def test_sibling_chain_shard_depth_is_polylog(self):
        """A pure sibling chain is the worst case update traffic leaves:
        naive segmenting gives a reference *chain* (depth ~ n / width);
        the composition hierarchy must stay polylogarithmic."""
        doc = CompressedXml.from_xml(
            "<log>" + "<e/>" * 3000 + "</log>", compress=False
        )
        manager = ShardManager(doc.grammar, width=16)
        shards = manager.shard_count
        assert shards > 50
        # Generous polylog envelope; a chain decomposition would be
        # ~shards deep and fail by an order of magnitude.
        assert manager.spine_depth() <= 16

    def test_width_below_minimum_rejected(self):
        doc = CompressedXml.from_xml("<a><b/></a>")
        with pytest.raises(ValueError):
            ShardManager(doc.grammar, width=MIN_SHARD_WIDTH - 1)

    def test_small_document_stays_unsharded(self):
        doc = CompressedXml.from_xml("<a><b/><c/></a>", shard_width=64)
        assert doc.shard_manager.shard_count == 0

    def test_updates_trigger_splits_and_keep_budget(self):
        doc = CompressedXml.from_xml("<log><e/></log>", shard_width=16)
        for _ in range(150):
            doc.append_child(0, XmlNode("entry"))
        manager = doc.shard_manager
        assert manager.shard_count > 0
        assert manager.max_spine_width() <= 2 * 16
        manager.check_invariants()
        doc.grammar.validate()

    def test_deletes_trigger_merges(self):
        # compress=False: the repetitive document would otherwise shrink
        # below the width budget before the manager ever sees it.
        doc = CompressedXml.from_xml(
            "<log>" + "<e><a/><b/></e>" * 120 + "</log>",
            shard_width=16, compress=False,
        )
        manager = doc.shard_manager
        assert manager.shard_count > 0
        while doc.element_count > 2:
            doc.delete(1)
        assert manager.stats.merges + manager.stats.collected > 0
        assert doc.to_xml() == "<log><e><a/></e></log>" or doc.element_count <= 3
        manager.check_invariants()
        doc.grammar.validate()

    def test_root_operations_still_guarded(self):
        from repro.updates.operations import UpdateError

        doc = CompressedXml.from_xml(CHAIN, shard_width=16)
        with pytest.raises(UpdateError):
            doc.delete(0)
        from repro.updates.batch import BatchInsert

        with pytest.raises(UpdateError):
            doc.insert(0, XmlNode("pre"))  # would create a forest
        with pytest.raises(UpdateError):
            doc.apply_batch([BatchInsert(0, XmlNode("pre"))])
        doc.rename(0, "journal")
        assert doc.tag_of(0) == "journal"

    def test_grammar_level_root_delete_guard_survives_sharding(self):
        """The root terminal may live inside a chunk shard's body after
        the start rule decomposes; the grammar-level delete guard must
        recognize the document root by preorder index, not by being the
        start RHS root (review finding)."""
        from repro.updates import grammar_updates
        from repro.updates.operations import UpdateError

        doc = CompressedXml.from_xml(CHAIN, shard_width=16, compress=False)
        manager = doc.shard_manager
        assert manager.shard_count > 0
        position, steps = doc.index.resolve_element(0)
        with pytest.raises(UpdateError):
            grammar_updates.delete(
                doc.grammar, position, grammar_index=doc.index,
                steps=steps, spine=manager,
            )
        assert doc.to_xml().startswith("<log>")  # document intact


class TestIndexLocality:
    def test_splits_and_merges_never_invalidate_wholesale(self):
        doc = CompressedXml.from_xml(CHAIN, shard_width=16,
                                     auto_recompress_factor=2.0)
        doc.count("//e")  # materialize the label index
        for i in range(80):
            doc.append_child(0, XmlNode("entry"))
            if i % 3 == 0:
                doc.delete(1)
        manager = doc.shard_manager
        assert manager.stats.splits > 0
        assert doc.index.wholesale_invalidations == 0
        assert doc.label_index.wholesale_invalidations == 0
        assert doc.index.evicted_rules > 0  # per-rule, not wholesale

    def test_shard_eviction_is_ancestor_scoped(self):
        """Mutating a deep element evicts the touched shard plus its
        ancestor chain -- a bounded slice, not the whole cache."""
        doc = CompressedXml.from_xml(
            "<log>" + "<e/>" * 2000 + "</log>", shard_width=16
        )
        list(doc.tags())  # materialize every rule's tables
        cached_before = doc.index.cached_rule_count
        evicted_before = doc.index.evicted_rules
        doc.rename(1900, "deep")
        evicted = doc.index.evicted_rules - evicted_before
        assert evicted < cached_before / 4, (
            f"one deep rename evicted {evicted} of {cached_before} "
            "cached rules; shard eviction must be ancestor-scoped"
        )


class TestShardInvariantProperties:
    @given(xml_documents(max_elements=25), update_scripts(max_ops=10),
           shard_widths())
    @settings(max_examples=25, deadline=None)
    def test_update_scripts_match_unsharded_twin(self, tree, script, width):
        sharded = CompressedXml.from_document(tree, shard_width=width)
        plain = CompressedXml.from_document(tree)
        for _ in replay_script(sharded, script):
            pass
        for _ in replay_script(plain, script):
            pass
        assert sharded.to_xml() == plain.to_xml()
        sharded.grammar.validate()
        sharded.shard_manager.check_invariants()
        assert sharded.shard_manager.max_spine_width() <= 2 * width

    @given(xml_documents(max_elements=25), update_scripts(max_ops=8),
           shard_widths())
    @settings(max_examples=25, deadline=None)
    def test_to_document_identical_across_reshard(self, tree, script, width):
        """``reshard()`` is semantically invisible: the document is
        byte-identical before and after every rebalancing pass."""
        doc = CompressedXml.from_document(tree, shard_width=width)
        manager = doc.shard_manager
        for _ in replay_script(doc, script):
            before = doc.to_xml()
            manager._touched.update(manager.spine_rules())
            manager.reshard()
            assert doc.to_xml() == before
            manager.check_invariants()

    @given(xml_documents(max_elements=25), batch_scripts(max_ops=10),
           shard_widths())
    @settings(max_examples=25, deadline=None)
    def test_batch_scripts_match_unsharded_twin(self, tree, script, width):
        sharded = CompressedXml.from_document(tree, shard_width=width)
        plain = CompressedXml.from_document(tree)
        ops = concretize(plain, script)  # plain doubles as the oracle
        sharded.apply_batch(ops)
        assert sharded.to_xml() == plain.to_xml()
        sharded.grammar.validate()
        sharded.shard_manager.check_invariants()

    @given(xml_documents(max_elements=30), shard_widths())
    @settings(max_examples=25, deadline=None)
    def test_queries_stable_across_forced_splits(self, tree, width):
        """select / tags / navigation agree with the unsharded twin both
        before and immediately after shard splits."""
        sharded = CompressedXml.from_document(tree, shard_width=width)
        plain = CompressedXml.from_document(tree)

        def assert_same_answers():
            assert list(sharded.tags()) == list(plain.tags())
            for path in ("//a", "/a/*", "//b//c", "//zz"):
                assert sharded.select(path) == plain.select(path)
            assert (
                list(stream_elements(sharded.grammar))
                == list(stream_elements(plain.grammar))
            )
            for i in range(sharded.element_count):
                assert sharded.parent_of(i) == plain.parent_of(i)
                assert sharded.depth_of(i) == plain.depth_of(i)

        assert_same_answers()
        # Push both documents past the split threshold and re-check.
        for _ in range(3 * width):
            sharded.append_child(0, XmlNode("a", [XmlNode("b")]))
            plain.append_child(0, XmlNode("a", [XmlNode("b")]))
        assert sharded.shard_manager.stats.splits > 0
        assert_same_answers()

    @given(xml_documents(max_elements=20), update_scripts(max_ops=8),
           shard_widths())
    @settings(max_examples=15, deadline=None)
    def test_recompression_preserves_sharded_document(self, tree, script,
                                                      width):
        """Explicit recompressions between updates keep the sharded and
        unsharded documents identical -- the barrier contract: shard
        bodies compress, shard references stay put, pruning keeps the
        single-referenced shard rules."""
        sharded = CompressedXml.from_document(
            tree, shard_width=width, auto_recompress_factor=1.5
        )
        plain = CompressedXml.from_document(tree)
        for _ in replay_script(sharded, script):
            pass
        for _ in replay_script(plain, script):
            pass
        sharded.recompress()
        assert sharded.to_xml() == plain.to_xml()
        sharded.grammar.validate()
        sharded.shard_manager.check_invariants()
