"""MVCC snapshot isolation: pinned views across update interleavings.

The contract under test: ``doc.snapshot()`` pins the grammar epoch that
was current at the call, and the returned :class:`SnapshotView` answers
the whole read surface *as of that epoch* no matter what the writer does
afterwards -- single updates, batches, resharding, or recompression
(incremental and wholesale).  Pins are refcounted; the copy-on-write
overlay behind an epoch is reclaimed when its last view closes.
"""

import pytest
from hypothesis import given, settings

from repro.api import CompressedXml
from repro.trees.unranked import XmlNode
from repro.trees.xml_io import parse_xml
from repro.updates.batch import (
    BatchAppend,
    BatchDelete,
    BatchInsert,
    BatchRename,
)

from tests.strategies import (
    batch_scripts,
    shard_widths,
    update_scripts,
    xml_documents,
)

XML = "<log>" + "<entry><ip/><status/></entry>" * 6 + "</log>"


def make_doc(**kwargs):
    return CompressedXml.from_xml(XML, **kwargs)


def concretize(seq_doc, script):
    """Replay an abstract batch script on the sequential oracle,
    recording the concrete ops valid at each op's application time
    (same scheme as the batch equivalence suite)."""
    ops = []
    for kind, fraction, tag, wide in script:
        count = seq_doc.element_count
        content = (
            [XmlNode(tag), XmlNode("wide", [XmlNode("inner")])]
            if wide else XmlNode(tag)
        )
        if kind == "rename":
            index = int(fraction * count)
            seq_doc.rename(index, tag)
            ops.append(BatchRename(index, tag))
        elif kind == "insert":
            if count < 2:
                continue
            index = 1 + int(fraction * (count - 1))
            seq_doc.insert(index, content)
            ops.append(BatchInsert(index, content))
        elif kind == "append":
            index = int(fraction * count)
            seq_doc.append_child(index, content)
            ops.append(BatchAppend(index, content))
        else:
            if count < 3:
                continue
            index = 1 + int(fraction * (count - 1))
            seq_doc.delete(index)
            ops.append(BatchDelete(index))
    return ops


def replay(doc, script):
    """Apply one (kind, fraction, tag) entry at a time, yielding after
    each so the caller can interpose snapshots."""
    for kind, fraction, tag in script:
        count = doc.element_count
        if kind == "rename":
            doc.rename(int(fraction * count), tag)
        elif kind == "insert" and count > 1:
            doc.insert(1 + int(fraction * (count - 1)), XmlNode(tag))
        elif kind == "append":
            doc.append_child(int(fraction * count),
                             XmlNode(tag, [XmlNode(tag)]))
        elif kind == "delete" and count > 1:
            doc.delete(1 + int(fraction * (count - 1)))
        elif kind == "recompress":
            doc.recompress()
        yield kind


class TestSnapshotBasics:
    def test_view_reflects_pin_time_state(self):
        doc = make_doc()
        before = doc.to_xml()
        with doc.snapshot() as view:
            doc.rename(1, "renamed")
            doc.append_child(0, XmlNode("tail"))
            doc.delete(doc.element_count - 1)
            doc.recompress()
            assert view.to_xml() == before
            assert view.element_count == 19
            assert view.tag_of(1) == "entry"
        assert doc.to_xml() != before

    def test_read_surface_matches_document_at_pin(self):
        doc = make_doc()
        view = doc.snapshot()
        expected_tags = list(doc.tags())
        expected_status = doc.select("//status")
        expected_count = doc.count("/log/entry")
        expected_subtree = doc.subtree_xml(1)
        doc.rename(2, "moved")
        doc.insert(3, parse_xml("<extra><deep/></extra>"))
        assert list(view.tags()) == expected_tags
        assert view.select("//status") == expected_status
        assert view.count("/log/entry") == expected_count
        assert view.subtree_xml(1) == expected_subtree
        assert view.parent_of(2) == 1
        assert view.first_child(1) == 2
        assert view.next_sibling(2) == 3
        view.close()

    def test_closed_view_raises(self):
        doc = make_doc()
        view = doc.snapshot()
        view.close()
        assert view.closed
        with pytest.raises(ValueError, match="closed"):
            view.to_xml()
        with pytest.raises(ValueError, match="closed"):
            view.select("//entry")
        view.close()  # idempotent

    def test_pin_accounting_and_overlay_reclamation(self):
        doc = make_doc()
        grammar = doc.grammar
        assert doc.mvcc_info()["pinned_snapshots"] == 0
        first = doc.snapshot()
        doc.rename(1, "r1")
        second = doc.snapshot()
        third = doc.snapshot()  # same epoch as second: shared pin
        info = doc.mvcc_info()
        assert info["pinned_snapshots"] == 3
        assert info["pinned_epochs"] == [first.epoch, second.epoch]
        assert second.epoch == third.epoch
        assert info["epoch"] >= second.epoch
        assert info["oldest_pin_age_seconds"] >= 0.0
        doc.rename(2, "r2")  # forces overlay entries for pinned epochs
        first.close()
        assert doc.mvcc_info()["pinned_epochs"] == [second.epoch]
        second.close()
        third.close()
        assert doc.mvcc_info()["pinned_snapshots"] == 0
        assert grammar.pinned_epochs() == {}

    def test_views_on_distinct_epochs_diverge(self):
        doc = make_doc()
        v0 = doc.snapshot()
        doc.rename(1, "one")
        v1 = doc.snapshot()
        doc.rename(1, "two")
        v2 = doc.snapshot()
        assert v0.tag_of(1) == "entry"
        assert v1.tag_of(1) == "one"
        assert v2.tag_of(1) == "two"
        assert doc.tag_of(1) == "two"
        for view in (v0, v1, v2):
            view.close()

    def test_snapshot_of_sharded_document(self):
        doc = make_doc(shard_width=8)
        doc_xml = doc.to_xml()
        with doc.snapshot() as view:
            for _ in range(24):  # force splits / resharding
                doc.append_child(0, XmlNode("burst", [XmlNode("x")]))
            assert view.to_xml() == doc_xml
            assert view.element_count == 19


class TestSnapshotVsBatch:
    def test_view_stable_across_batch_with_auto_recompress(self):
        doc = make_doc(shard_width=8, auto_recompress_factor=1.1)
        before = doc.to_xml()
        with doc.snapshot() as view:
            stats = doc.apply_batch(
                [BatchAppend(0, XmlNode("a", [XmlNode("b")]))
                 for _ in range(20)]
                + [BatchRename(1, "renamed"), BatchDelete(5)]
            )
            assert view.to_xml() == before
        assert stats.commit_epoch > stats.base_epoch
        assert doc.to_xml() != before

    def test_batch_stamps_epoch_window(self):
        doc = make_doc()
        epoch_before = doc.grammar.epoch
        stats = doc.apply_batch([BatchRename(1, "stamped")])
        assert stats.base_epoch == epoch_before
        assert stats.commit_epoch == doc.grammar.epoch
        assert stats.commit_epoch > stats.base_epoch

    def test_export_state_round_trips_pinned_state(self):
        doc = make_doc(shard_width=8)
        with doc.snapshot() as view:
            expected = view.to_xml()
            doc.apply_batch(
                [BatchAppend(0, XmlNode("noise")) for _ in range(12)]
            )
            state = view.export_state()
        restored = CompressedXml.from_state(state)
        assert restored.to_xml() == expected
        assert restored.element_count == 19


class TestEvictionVsPin:
    """Satellite: wholesale index eviction must not reach into views.

    With ``incremental_recompress=False`` a recompression resets the
    document's indexes via ``invalidate_all`` -- the one remaining
    wholesale-eviction path.  A pinned view owns private index tables
    over its frozen grammar (built with ``register=False``), so the
    reset must be invisible to it.
    """

    def test_wholesale_invalidation_does_not_touch_views(self):
        doc = make_doc(incremental_recompress=False)
        with doc.snapshot() as view:
            expected = view.to_xml()
            assert view.element_count == 19  # warm the view's tables
            assert view.select("//status")
            for index in range(1, 8):
                doc.rename(index, f"t{index}")
            doc.recompress()  # invalidate_all on the doc's indexes
            assert view.to_xml() == expected
            assert view.element_count == 19
            assert view.tag_of(1) == "entry"
            assert len(view.select("//status")) == 6

    def test_doc_indexes_do_recover_after_wholesale_reset(self):
        doc = make_doc(incremental_recompress=False)
        with doc.snapshot() as view:
            doc.rename(1, "alpha")
            doc.recompress()
            assert doc.tag_of(1) == "alpha"
            assert view.tag_of(1) == "entry"


class TestSnapshotProperties:
    @given(xml_documents(max_elements=20), update_scripts(max_ops=8),
           shard_widths())
    @settings(max_examples=25, deadline=None)
    def test_every_pin_replays_to_pin_time_xml(self, tree, script, width):
        """Interleave a snapshot between every update: at the end each
        pinned view still serializes to the document as it was at its
        pin, and closing them all releases every overlay."""
        doc = CompressedXml.from_document(tree, shard_width=width)
        pinned = [(doc.snapshot(), doc.to_xml())]
        for _ in replay(doc, script):
            pinned.append((doc.snapshot(), doc.to_xml()))
        for view, expected in pinned:
            assert view.to_xml() == expected
            assert view.element_count == \
                expected.count("<") - expected.count("</")
        for view, _ in pinned:
            view.close()
        assert doc.grammar.pinned_epochs() == {}
        doc.grammar.validate()

    @given(xml_documents(max_elements=20), batch_scripts(max_ops=10),
           shard_widths())
    @settings(max_examples=20, deadline=None)
    def test_pins_survive_batches(self, tree, script, width):
        """Same invariant with whole batches (single mutation epoch,
        trailing reshard + auto-recompress) between the pins."""
        doc = CompressedXml.from_document(tree, shard_width=width)
        oracle = CompressedXml.from_document(tree)
        pinned = [(doc.snapshot(), doc.to_xml())]
        ops = concretize(oracle, script)
        for position in range(0, len(ops), 3):
            doc.apply_batch(ops[position:position + 3])
            pinned.append((doc.snapshot(), doc.to_xml()))
        assert doc.to_xml() == oracle.to_xml()
        for view, expected in pinned:
            assert view.to_xml() == expected
        for view, _ in pinned:
            view.close()
        assert doc.grammar.pinned_epochs() == {}
