"""Tests for minimal DAG compression."""

import pytest
from hypothesis import given, settings

from repro.dag import dag_statistics, dag_to_grammar, minimal_dag_signatures
from repro.grammar.navigation import grammar_generates_tree
from repro.trees.binary import encode_binary
from repro.trees.builder import parse_term
from repro.trees.symbols import Alphabet
from repro.trees.unranked import XmlNode

from tests.strategies import ranked_trees, xml_documents


class TestSignatures:
    def test_equal_subtrees_share_signatures(self, alphabet):
        tree = parse_term("f(g(a),g(a))", alphabet)
        signature_of, occurrences, _rep = minimal_dag_signatures(tree)
        left, right = tree.children
        assert signature_of[id(left)] == signature_of[id(right)]
        assert occurrences[signature_of[id(left)]] == 2

    def test_distinct_subtrees_get_distinct_signatures(self, alphabet):
        tree = parse_term("f(g(a),g(b))", alphabet)
        signature_of, _occ, _rep = minimal_dag_signatures(tree)
        left, right = tree.children
        assert signature_of[id(left)] != signature_of[id(right)]

    def test_root_occurs_once(self, alphabet):
        tree = parse_term("f(a,a)", alphabet)
        signature_of, occurrences, _ = minimal_dag_signatures(tree)
        assert occurrences[signature_of[id(tree)]] == 1


class TestStats:
    def test_figure1_dag(self, alphabet):
        # Figure 1's tree: the two big a-subtrees are equal.
        t = "a(#,a(#,#))"
        tree = parse_term(f"f(a(#,a({t},{t})),#)", alphabet)
        stats = dag_statistics(tree)
        assert stats.tree_nodes == 15
        assert stats.dag_nodes < stats.tree_nodes
        assert 0 < stats.ratio < 1

    def test_incompressible_tree(self, alphabet):
        tree = parse_term("f(g(a),h(b))", alphabet)
        stats = dag_statistics(tree)
        assert stats.dag_edges == stats.tree_edges

    def test_flat_list_defeats_dag_sharing(self, alphabet):
        """A flat list's binary encoding has all-distinct suffix chains,
        so the DAG shares almost nothing -- the very weakness pattern-based
        SLCF sharing (Section I) fixes."""
        doc = XmlNode("r", [XmlNode("e") for _ in range(128)])
        tree = encode_binary(doc, alphabet)
        stats = dag_statistics(tree)
        assert stats.ratio > 0.9

    def test_repeated_record_bodies_do_share(self, alphabet):
        doc = XmlNode(
            "db",
            [XmlNode("rec", [XmlNode("a"), XmlNode("b")]) for _ in range(64)],
        )
        tree = encode_binary(doc, alphabet)
        stats = dag_statistics(tree)
        assert stats.dag_edges < 0.7 * stats.tree_edges

    @given(ranked_trees(max_nodes=50))
    def test_dag_never_larger(self, tree):
        stats = dag_statistics(tree)
        assert stats.dag_edges <= stats.tree_edges
        assert stats.dag_nodes <= stats.tree_nodes


class TestDagToGrammar:
    def test_val_preserved(self, alphabet):
        t = "a(#,a(#,#))"
        tree = parse_term(f"f(a(#,a({t},{t})),#)", alphabet)
        grammar = dag_to_grammar(tree, alphabet)
        grammar.validate()
        assert grammar_generates_tree(grammar, tree)

    def test_sharing_reduces_size(self, alphabet):
        doc = XmlNode(
            "db",
            [XmlNode("rec", [XmlNode("a"), XmlNode("b")]) for _ in range(64)],
        )
        tree = encode_binary(doc, alphabet)
        from repro.trees.node import edge_count

        grammar = dag_to_grammar(tree, alphabet)
        assert grammar.size < edge_count(tree)
        assert grammar_generates_tree(grammar, tree)

    def test_all_rules_are_rank0(self, alphabet):
        doc = XmlNode("r", [XmlNode("e", [XmlNode("x")]) for _ in range(16)])
        tree = encode_binary(doc, alphabet)
        grammar = dag_to_grammar(tree, alphabet, prune=False)
        for head in grammar.nonterminals():
            assert head.rank == 0

    def test_input_not_modified(self, alphabet):
        tree = parse_term("f(g(a),g(a))", alphabet)
        before = tree.to_sexpr()
        dag_to_grammar(tree, alphabet)
        assert tree.to_sexpr() == before

    @settings(max_examples=30, deadline=None)
    @given(xml_documents(max_elements=40))
    def test_val_preserved_property(self, doc):
        alphabet = Alphabet()
        tree = encode_binary(doc, alphabet)
        grammar = dag_to_grammar(tree, alphabet)
        grammar.validate()
        assert grammar_generates_tree(grammar, tree)

    def test_grammar_repair_improves_on_dag(self, alphabet):
        """SLCF pattern sharing beats pure subtree sharing (Section I)."""
        from repro.core.grammar_repair import GrammarRePair

        doc = XmlNode("r", [XmlNode("e") for _ in range(256)])
        tree = encode_binary(doc, alphabet)
        dag_grammar = dag_to_grammar(tree, alphabet)
        recompressed = GrammarRePair().compress(dag_grammar)
        assert recompressed.size < dag_grammar.size
