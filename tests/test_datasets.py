"""Tests for the synthetic corpus generators."""

import pytest

from repro.datasets import CORPORA, make_corpus
from repro.trees.stats import document_stats


class TestRegistry:
    def test_all_six_corpora_present(self):
        assert set(CORPORA) == {
            "EXI-Weblog", "XMark", "EXI-Telecomp",
            "Treebank", "Medline", "NCBI",
        }

    def test_make_corpus_unknown_name(self):
        with pytest.raises(KeyError, match="unknown corpus"):
            make_corpus("nope")

    def test_paper_reference_stats_recorded(self):
        assert CORPORA["NCBI"].paper_edges == 3642224
        assert CORPORA["Treebank"].paper_depth == 35


class TestScaling:
    @pytest.mark.parametrize("name", sorted(CORPORA))
    def test_edge_budget_respected(self, name):
        for budget in (500, 2000):
            doc = make_corpus(name, edges=budget, seed=1)
            stats = document_stats(doc)
            # Generators overshoot by at most one record.
            assert budget * 0.8 <= stats.edges <= budget * 1.6

    @pytest.mark.parametrize("name", sorted(CORPORA))
    def test_deterministic_in_seed(self, name):
        a = document_stats(make_corpus(name, edges=800, seed=7))
        b = document_stats(make_corpus(name, edges=800, seed=7))
        assert a == b

    def test_random_corpora_vary_with_seed(self):
        for name in ("XMark", "Medline", "Treebank"):
            a = document_stats(make_corpus(name, edges=800, seed=1))
            b = document_stats(make_corpus(name, edges=800, seed=2))
            assert a.label_histogram != b.label_histogram or a.edges != b.edges


class TestStructuralRegimes:
    def test_depths_match_paper_regime(self):
        assert document_stats(make_corpus("EXI-Weblog", 1000)).depth == 2
        assert document_stats(make_corpus("NCBI", 1000)).depth == 3
        assert 4 <= document_stats(make_corpus("EXI-Telecomp", 1000)).depth <= 7
        assert 5 <= document_stats(make_corpus("Medline", 2000)).depth <= 8
        assert document_stats(make_corpus("XMark", 2000)).depth >= 8
        assert document_stats(make_corpus("Treebank", 2000)).depth >= 10

    def test_compression_ordering_matches_table3(self):
        """Extreme corpora compress far better than moderate ones."""
        from repro.core.grammar_repair import GrammarRePair
        from repro.trees.binary import encode_binary
        from repro.trees.symbols import Alphabet

        ratios = {}
        for name in ("EXI-Weblog", "Medline", "Treebank"):
            doc = make_corpus(name, edges=1500, seed=3)
            stats = document_stats(doc)
            alphabet = Alphabet()
            grammar = GrammarRePair().compress_tree(
                encode_binary(doc, alphabet), alphabet, copy_input=False
            )
            ratios[name] = grammar.size / stats.edges
        assert ratios["EXI-Weblog"] < ratios["Medline"] / 3
        assert ratios["Medline"] < ratios["Treebank"]

    def test_extreme_corpora_have_constant_size_grammars(self):
        """Doubling the document barely grows the grammar (list regime)."""
        from repro.core.grammar_repair import GrammarRePair
        from repro.trees.binary import encode_binary
        from repro.trees.symbols import Alphabet

        sizes = []
        for budget in (2000, 4000):
            doc = make_corpus("NCBI", edges=budget)
            alphabet = Alphabet()
            grammar = GrammarRePair().compress_tree(
                encode_binary(doc, alphabet), alphabet, copy_input=False
            )
            sizes.append(grammar.size)
        assert sizes[1] <= sizes[0] + 8
