"""Tests for the observability layer: ``repro.obs`` metrics and tracing,
the wired instrumentation across the document/storage stack, and the
``to_dict()`` stats protocol."""

import logging
import math
import os

import pytest

from repro.api import CompressedXml
from repro.obs import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    Tracer,
    default_registry,
    set_default_registry,
    summarize_latencies,
    trace_span,
)
from repro.obs.metrics import NULL_METRIC
from repro.trees.unranked import XmlNode

XML = "<log>" + "<entry><ip/><ts/></entry>" * 30 + "</log>"


# ----------------------------------------------------------------------
# registry primitives
# ----------------------------------------------------------------------
class TestPrimitives:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        counter = reg.counter("repro_things_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = reg.gauge("repro_depth")
        gauge.set(3.5)
        gauge.inc()
        gauge.dec(0.5)
        assert gauge.value == 4.0

    def test_histogram_percentiles(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_latency_seconds")
        for ms in range(1, 101):  # 1ms .. 100ms uniform
            hist.observe(ms / 1000.0)
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["sum_s"] == pytest.approx(5.05, rel=1e-6)
        # Bucketed estimates within a bucket width of the exact values.
        assert snap["p50_s"] == pytest.approx(0.050, abs=0.03)
        assert snap["p99_s"] == pytest.approx(0.099, abs=0.06)
        assert snap["min_s"] <= 0.001 + 1e-9
        assert snap["max_s"] >= 0.1 - 1e-9
        # Percentiles are clamped to the observed range.
        assert snap["p99_s"] <= snap["max_s"] + 1e-9

    def test_histogram_buckets_are_cumulative_in_export(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_latency_seconds")
        hist.observe(0.002)
        hist.observe(0.2)
        counts = hist.bucket_counts()
        assert sum(counts) == 2
        assert len(counts) == len(LATENCY_BUCKETS) + 1  # +Inf overflow

    def test_same_name_same_labels_returns_same_child(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_hits_total", op="rename")
        b = reg.counter("repro_hits_total", op="rename")
        c = reg.counter("repro_hits_total", op="delete")
        assert a is b
        assert a is not c

    def test_invalid_metric_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(ValueError):
            reg.histogram("repro_x_total")


class TestDisabledRegistry:
    def test_disabled_registry_hands_out_null_handles(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("repro_a_total") is NULL_METRIC
        assert reg.gauge("repro_b") is NULL_METRIC
        assert reg.histogram("repro_c_seconds") is NULL_METRIC

    def test_null_metric_is_inert(self):
        NULL_METRIC.inc()
        NULL_METRIC.dec()
        NULL_METRIC.set(3)
        NULL_METRIC.observe(0.5)
        assert NULL_METRIC.value == 0
        assert math.isnan(NULL_METRIC.percentile(0.5))
        assert NULL_METRIC.snapshot()["count"] == 0

    def test_null_registry_renders_empty_exposition(self):
        assert NULL_REGISTRY.render_prometheus() == ""
        assert NULL_REGISTRY.declared_names() == []


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def parse_exposition(text):
    """Mini-validator: parse samples, enforcing format basics."""
    samples = {}
    seen_type = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert name not in seen_type, f"duplicate TYPE for {name}"
            assert kind in ("counter", "gauge", "histogram"), line
            seen_type[name] = kind
            continue
        if line.startswith("#"):
            assert line.startswith("# HELP "), line
            continue
        name_and_labels, value = line.rsplit(" ", 1)
        float(value)  # must parse
        samples[name_and_labels] = float(value)
    return seen_type, samples


class TestPrometheusExport:
    def test_histogram_exposition_shape(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_latency_seconds", "how slow")
        hist.observe(0.003)
        hist.observe(0.004)
        hist.observe(2.0)
        text = reg.render_prometheus()
        types, samples = parse_exposition(text)
        assert types["repro_latency_seconds"] == "histogram"
        assert samples['repro_latency_seconds_bucket{le="+Inf"}'] == 3
        assert samples["repro_latency_seconds_count"] == 3
        assert samples["repro_latency_seconds_sum"] == \
            pytest.approx(2.007)
        # Buckets are cumulative and monotone.
        last = 0.0
        for bucket in LATENCY_BUCKETS:
            key = f'repro_latency_seconds_bucket{{le="{bucket}"}}'
            assert samples[key] >= last
            last = samples[key]
        assert 3 >= last

    def test_declared_but_unobserved_families_are_exported(self):
        reg = MetricsRegistry()
        reg.histogram("repro_quiet_seconds")
        reg.counter("repro_quiet_total")
        types, samples = parse_exposition(reg.render_prometheus())
        assert types["repro_quiet_seconds"] == "histogram"
        assert samples["repro_quiet_seconds_count"] == 0
        assert samples["repro_quiet_total"] == 0

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("repro_odd_total", site='a"b\\c\nd').inc()
        text = reg.render_prometheus()
        assert 'site="a\\"b\\\\c\\nd"' in text

    def test_sources_become_prefixed_gauges(self):
        reg = MetricsRegistry()
        reg.register_source("repro_doc", lambda: {"epoch": 7})
        types, samples = parse_exposition(reg.render_prometheus())
        assert samples["repro_doc_epoch"] == 7
        assert types["repro_doc_epoch"] == "gauge"

    def test_dead_source_vanishes(self):
        reg = MetricsRegistry()
        reg.register_source("repro_doc", lambda: {})
        assert "repro_doc" not in reg.render_prometheus()


class TestSummarizeLatencies:
    def test_empty(self):
        summary = summarize_latencies([])
        assert summary["count"] == 0
        assert summary["p50_ms"] is None

    def test_percentiles_exact(self):
        samples = [i / 1000.0 for i in range(1, 101)]
        summary = summarize_latencies(samples)
        assert summary["count"] == 100
        # Nearest-rank: within one sample of the exact quantile.
        assert summary["p50_ms"] == pytest.approx(50.0, abs=1.0)
        assert summary["p95_ms"] == pytest.approx(95.0, abs=1.0)
        assert summary["p99_ms"] == pytest.approx(99.0, abs=1.0)
        assert summary["max_ms"] == pytest.approx(100.0)


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_nested_spans_recorded_on_the_root(self):
        tracer = Tracer(ring_size=8)
        with tracer.span("commit", op="rename"):
            with tracer.span("append"):
                pass
            with tracer.span("apply"):
                pass
        roots = tracer.recent()
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "commit"
        assert root.tags == {"op": "rename"}
        assert [child.name for child in root.children] == \
            ["append", "apply"]
        assert root.duration_s >= max(
            child.duration_s for child in root.children)

    def test_ring_is_bounded(self):
        tracer = Tracer(ring_size=4)
        for index in range(10):
            with tracer.span(f"op{index}"):
                pass
        names = [span.name for span in tracer.recent()]
        assert names == ["op6", "op7", "op8", "op9"]

    def test_slow_op_logs_one_structured_line(self, caplog):
        tracer = Tracer(slow_op_seconds=0.0)  # everything is slow
        with caplog.at_level(logging.WARNING, logger="repro.obs.trace"):
            with tracer.span("commit", op="batch"):
                pass
        assert len(caplog.records) == 1
        message = caplog.records[0].getMessage()
        assert "commit" in message
        assert "op=batch" in message

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored"):
            pass
        assert tracer.recent() == []

    def test_span_to_dict(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
        data = tracer.recent()[0].to_dict()
        assert data["name"] == "outer"
        assert data["tags"] == {"kind": "test"}
        assert data["children"][0]["name"] == "inner"
        assert data["duration_ms"] >= 0


# ----------------------------------------------------------------------
# wired instrumentation, end to end
# ----------------------------------------------------------------------
class TestDocumentInstrumentation:
    def test_update_batch_query_recompress_families(self):
        reg = MetricsRegistry()
        doc = CompressedXml.from_xml(XML, metrics=reg)
        doc.rename(1, "zap")
        doc.insert(2, XmlNode("n"))
        doc.append_child(0, XmlNode("tail"))
        doc.delete(3)
        with doc.batch() as batch:
            batch.rename(4, "b1")
            batch.rename(5, "b2")
        doc.recompress()
        doc.select("//zap")
        doc.count("//ip")

        collected = reg.collect()
        hists = collected["histograms"]
        for op in ("rename", "insert", "append_child", "delete"):
            assert hists[f'repro_update_seconds{{op="{op}"}}'][
                "count"] == 1
        for stage in ("plan", "isolate", "apply", "settle"):
            assert hists[f'repro_batch_stage_seconds{{stage="{stage}"}}'][
                "count"] == 1
        for stage in ("census", "rounds", "prune"):
            assert hists[
                f'repro_recompress_stage_seconds{{stage="{stage}"}}'][
                    "count"] >= 1
        for stage in ("parse", "walk"):
            assert hists[f'repro_query_stage_seconds{{stage="{stage}"}}'][
                "count"] == 2
        counters = collected["counters"]
        assert counters['repro_queries_total{kind="select"}'] == 1
        assert counters['repro_queries_total{kind="count"}'] == 1
        assert counters["repro_batches_total"] == 1

    def test_gauge_sources_sample_live_state(self):
        reg = MetricsRegistry()
        doc = CompressedXml.from_xml(XML, metrics=reg)
        doc.rename(1, "zap")
        sources = reg.collect()["sources"]
        assert sources["repro_doc"]["element_count"] == \
            doc.element_count
        assert sources["repro_doc"]["updates_applied"] == 1
        assert sources["repro_index"]["grammar_cached_rules"] >= 0

    def test_disabled_document_records_nothing(self):
        doc = CompressedXml.from_xml(XML, metrics=NULL_REGISTRY)
        doc.rename(1, "zap")
        doc.select("//zap")
        assert doc.metrics() == NULL_REGISTRY.summary()
        assert NULL_REGISTRY.render_prometheus() == ""

    def test_default_registry_used_when_unspecified(self):
        previous = default_registry()
        reg = MetricsRegistry()
        set_default_registry(reg)
        try:
            doc = CompressedXml.from_xml(XML)
            assert doc.metrics_registry is reg
        finally:
            set_default_registry(previous)

    def test_failed_update_not_observed(self):
        reg = MetricsRegistry()
        doc = CompressedXml.from_xml(XML, metrics=reg)
        with pytest.raises(Exception):
            doc.rename(10 ** 9, "nope")
        hists = reg.collect()["histograms"]
        assert hists['repro_update_seconds{op="rename"}']["count"] == 0


class TestDurableInstrumentation:
    @pytest.fixture
    def registry(self):
        return MetricsRegistry()

    @pytest.fixture
    def store(self, tmp_path, registry):
        from repro.storage.durable import DurableXml

        doc = CompressedXml.from_xml(XML, metrics=registry)
        store = DurableXml.create(str(tmp_path / "store"), doc)
        yield store
        store.close()

    def test_commit_stages_and_totals(self, store, registry):
        store.rename(1, "zap")
        store.delete(2)
        hists = registry.collect()["histograms"]
        counters = registry.collect()["counters"]
        assert hists["repro_commit_seconds"]["count"] == 2
        assert hists['repro_commit_stage_seconds{stage="append"}'][
            "count"] == 2
        assert hists['repro_commit_stage_seconds{stage="apply"}'][
            "count"] == 2
        assert counters['repro_commits_total{op="rename"}'] == 1
        assert counters['repro_commits_total{op="delete"}'] == 1
        assert hists['repro_fsync_seconds{site="wal:append"}'][
            "count"] == 2

    def test_failed_apply_counts_as_commit_failure(self, store,
                                                   registry):
        with pytest.raises(Exception):
            store.rename(10 ** 9, "nope")
        counters = registry.collect()["counters"]
        assert counters["repro_commit_failures_total"] == 1
        hists = registry.collect()["histograms"]
        assert hists["repro_commit_seconds"]["count"] == 0

    def test_checkpoint_scrub_and_recovery_timed(self, store, registry,
                                                 tmp_path):
        from repro.storage.durable import DurableXml

        store.rename(1, "zap")
        store.checkpoint()
        store.scrub()
        hists = registry.collect()["histograms"]
        assert hists["repro_checkpoint_seconds"]["count"] == 1
        assert hists["repro_scrub_seconds"]["count"] == 1
        store.close()
        reopened = DurableXml.open(str(tmp_path / "store"),
                                   metrics=registry)
        try:
            hists = registry.collect()["histograms"]
            assert hists["repro_recovery_seconds"]["count"] == 1
        finally:
            reopened.close()

    def test_store_source_and_health_metrics_block(self, store,
                                                   registry):
        store.rename(1, "zap")
        sample = registry.collect()["sources"]["repro_store"]
        assert sample["generation"] == 0
        assert sample["degraded"] == 0
        assert sample["wal_size_bytes"] > 0
        health = store.health()
        assert health["metrics"] == registry.summary()

    def test_exposition_covers_the_declared_stack(self, store,
                                                  registry):
        store.rename(1, "zap")
        store.checkpoint()
        text = registry.render_prometheus()
        for family in ("repro_fsync_seconds", "repro_commit_seconds",
                       "repro_commit_stage_seconds",
                       "repro_checkpoint_seconds",
                       "repro_update_seconds",
                       "repro_recompress_stage_seconds",
                       "repro_query_stage_seconds"):
            assert f"# TYPE {family} histogram" in text, family
        parse_exposition(text)  # must be valid end to end


# ----------------------------------------------------------------------
# the to_dict() stats protocol
# ----------------------------------------------------------------------
class TestStatsProtocol:
    def test_batch_stats_to_dict(self):
        doc = CompressedXml.from_xml(XML, metrics=NULL_REGISTRY)
        with doc.batch() as batch:
            batch.rename(1, "a")
            batch.rename(2, "b")
        data = doc.last_batch_stats.to_dict()
        assert data["operations"] == 2
        for key in ("plan_seconds", "isolate_seconds", "apply_seconds"):
            assert data[key] >= 0.0

    def test_repair_stats_to_dict(self):
        doc = CompressedXml.from_xml(XML, metrics=NULL_REGISTRY)
        doc.rename(1, "zap")
        doc.recompress()
        data = doc.last_repair_stats.to_dict()
        assert data["rounds"] >= 0
        for key in ("census_seconds", "rounds_seconds",
                    "prune_seconds"):
            assert data[key] >= 0.0

    def test_index_stats_to_dict(self):
        doc = CompressedXml.from_xml(XML, metrics=NULL_REGISTRY)
        doc.count("//ip")
        grammar_stats = doc.index.to_dict()
        assert set(grammar_stats) == {
            "evicted_rules", "wholesale_invalidations", "cached_rules",
        }
        label_stats = doc.label_index.to_dict()
        assert set(label_stats) == {
            "evicted_rules", "wholesale_invalidations", "cached_rules",
        }

    def test_scrub_report_and_wal_to_dict(self, tmp_path):
        from repro.storage.durable import DurableXml

        doc = CompressedXml.from_xml(XML, metrics=NULL_REGISTRY)
        store = DurableXml.create(str(tmp_path / "store"), doc)
        try:
            store.rename(1, "zap")
            report = store.scrub()
            data = report.to_dict()
            assert data["ok"] is True
            assert data["findings"] == 0
            wal = store._wal.to_dict()
            assert wal["record_count"] == 1
            assert wal["size_bytes"] > 0
        finally:
            store.close()

    def test_shard_stats_to_dict(self):
        doc = CompressedXml.from_xml(XML, metrics=NULL_REGISTRY,
                                     shard_width=8)
        for _ in range(40):
            doc.append_child(0, XmlNode("tail"))
        data = doc.shard_manager.stats.to_dict()
        assert data["splits"] >= 1
        assert "merges" in data and "reshard_runs" in data
