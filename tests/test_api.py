"""Tests for the CompressedXml facade."""

import pytest
from hypothesis import given, settings

from repro.api import CompressedXml
from repro.trees.unranked import XmlNode, xml_equal
from repro.trees.xml_io import parse_xml
from repro.updates.operations import UpdateError

from tests.strategies import xml_documents


def listy_xml(n=50, tag="e"):
    return "<log>" + f"<{tag}/>" * n + "</log>"


class TestConstruction:
    def test_from_xml_roundtrip(self):
        doc = CompressedXml.from_xml("<a><b/><c><d/></c></a>")
        assert doc.to_xml() == "<a><b/><c><d/></c></a>"

    def test_from_document(self):
        tree = XmlNode("r", [XmlNode("x"), XmlNode("x")])
        doc = CompressedXml.from_document(tree)
        assert xml_equal(doc.to_document(), tree)

    def test_uncompressed_mode(self):
        doc = CompressedXml.from_xml(listy_xml(50), compress=False)
        assert len(doc.grammar) == 1
        assert doc.to_xml() == listy_xml(50)

    def test_compression_happens(self):
        doc = CompressedXml.from_xml(listy_xml(200))
        assert doc.compressed_size < 60
        assert doc.compression_ratio < 0.3

    def test_file_roundtrip(self, tmp_path):
        source = tmp_path / "doc.xml"
        source.write_text(listy_xml(20))
        doc = CompressedXml.from_file(str(source))
        saved = tmp_path / "doc.grammar"
        doc.save_grammar(str(saved))
        loaded = CompressedXml.from_grammar_file(str(saved))
        assert loaded.to_xml() == listy_xml(20)

    def test_save_grammar_replaces_atomically(self, tmp_path):
        # Overwriting an existing grammar file goes through a temp file
        # + os.replace: a crash mid-save can never leave a half-written
        # grammar under the target name, and no temp residue survives.
        saved = tmp_path / "doc.grammar"
        CompressedXml.from_xml(listy_xml(10)).save_grammar(str(saved))
        CompressedXml.from_xml(listy_xml(30)).save_grammar(str(saved))
        loaded = CompressedXml.from_grammar_file(str(saved))
        assert loaded.to_xml() == listy_xml(30)
        assert [p.name for p in tmp_path.iterdir()
                if p.name.endswith(".tmp")] == []

    @given(xml_documents(max_elements=25))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, tree):
        doc = CompressedXml.from_document(tree)
        assert xml_equal(doc.to_document(), tree)


class TestInspection:
    def test_counts(self):
        doc = CompressedXml.from_xml("<a><b/><c><d/></c></a>")
        assert doc.element_count == 4
        assert doc.edge_count == 3

    def test_tags_stream(self):
        doc = CompressedXml.from_xml("<a><b/><c><d/></c></a>")
        assert list(doc.tags()) == ["a", "b", "c", "d"]

    def test_tag_of(self):
        doc = CompressedXml.from_xml("<a><b/><c><d/></c></a>")
        assert doc.tag_of(0) == "a"
        assert doc.tag_of(2) == "c"
        with pytest.raises(IndexError):
            doc.tag_of(4)

    def test_tags_window(self):
        doc = CompressedXml.from_xml(listy_xml(100))
        full = list(doc.tags())
        assert list(doc.tags(1, 4)) == full[1:4]
        assert list(doc.tags(50)) == full[50:]
        assert list(doc.tags(0, 10**9)) == full
        assert list(doc.tags(7, 7)) == []
        with pytest.raises(IndexError):
            list(doc.tags(-1, 3))

    def test_tags_window_degenerate_bounds(self):
        """The pinned window contract: islice-like, not list slicing.
        ``i >= j`` is empty, ``j`` past the end clamps, negative bounds
        raise instead of silently diverging from slicing semantics."""
        doc = CompressedXml.from_xml(listy_xml(10))
        count = doc.element_count
        full = list(doc.tags())
        # i == j (including both at 0 and both past the end)
        assert list(doc.tags(0, 0)) == []
        assert list(doc.tags(count, count)) == []
        # j > element_count clamps to the end
        assert list(doc.tags(count - 2, count + 50)) == full[count - 2:]
        # i at or past the end yields nothing (with or without a stop)
        assert list(doc.tags(count)) == []
        assert list(doc.tags(count + 5, count + 9)) == []
        # i > j yields nothing
        assert list(doc.tags(6, 2)) == []
        # negative bounds raise uniformly -- a negative stop used to be
        # silently treated as an empty window
        with pytest.raises(IndexError):
            list(doc.tags(-1))
        with pytest.raises(IndexError):
            list(doc.tags(2, -1))
        with pytest.raises(IndexError):
            list(doc.tags(-3, -1))

    def test_tags_window_after_updates(self):
        doc = CompressedXml.from_xml(listy_xml(40))
        doc.rename(5, "special")
        doc.insert(10, XmlNode("gap"))
        full = list(doc.tags())
        assert list(doc.tags(4, 12)) == full[4:12]
        assert full[5] == "special"

    def test_repr(self):
        doc = CompressedXml.from_xml("<a><b/></a>")
        assert "2 elements" in repr(doc)

    def test_zero_arg_tags_goes_through_the_index(self, monkeypatch):
        """Pinned: the no-argument/default-bounds form is the same indexed
        iterator as an explicit window -- no unindexed stream path left."""
        from repro.grammar.index import GrammarIndex

        calls = []
        original = GrammarIndex.iter_element_symbols

        def recording(self, start, stop=None):
            calls.append((start, stop))
            return original(self, start, stop)

        monkeypatch.setattr(GrammarIndex, "iter_element_symbols", recording)
        doc = CompressedXml.from_xml(listy_xml(30))
        full = list(doc.tags())
        assert full == ["log"] + ["e"] * 30
        assert list(doc.tags(None, 5)) == full[:5]
        assert list(doc.tags(3)) == full[3:]
        assert calls == [(0, None), (0, 5), (3, None)]


class TestElementIndexContract:
    """The unified bounds contract (one shared check): IndexError for
    negative or out-of-range element indices, TypeError for non-ints --
    identical across the API, grammar-update, and batch layers, and
    satisfied by everything ``select()`` returns."""

    def strict_entry_points(self, doc):
        """Element-addressed entry points that must range-check."""
        from repro.trees.unranked import XmlNode as N

        return [
            doc.tag_of,
            lambda i: doc.rename(i, "x"),
            lambda i: doc.insert(i, N("x")),
            lambda i: doc.append_child(i, N("x")),
            doc.delete,
            doc.parent_of,
            doc.depth_of,
            doc.first_child,
            doc.next_sibling,
            lambda i: list(doc.children(i)),
            doc.subtree_xml,
        ]

    def window_entry_points(self, doc):
        """Window bounds: same type/negativity rules, but clamping past
        the end is part of the pinned tags() contract."""
        return [
            lambda i: list(doc.tags(i)),
            lambda i: list(doc.tags(0, i)),
        ]

    def test_negative_indices_raise_index_error(self):
        doc = CompressedXml.from_xml("<a><b/><c/></a>")
        probes = self.strict_entry_points(doc) + self.window_entry_points(doc)
        for probe in probes:
            with pytest.raises(IndexError):
                probe(-1)

    def test_out_of_range_raises_index_error(self):
        doc = CompressedXml.from_xml("<a><b/><c/></a>")
        for probe in self.strict_entry_points(doc):
            with pytest.raises(IndexError):
                probe(99)
        for probe in self.window_entry_points(doc):
            assert probe(99) in ([], ["a", "b", "c"])  # clamped, no raise

    def test_non_int_indices_raise_type_error(self):
        doc = CompressedXml.from_xml("<a><b/><c/></a>")
        probes = self.strict_entry_points(doc) + self.window_entry_points(doc)
        for probe in probes:
            for bad in (1.5, "1", True):
                with pytest.raises(TypeError):
                    probe(bad)

    def test_grammar_layer_uses_index_error_too(self):
        from repro.updates import grammar_updates

        doc = CompressedXml.from_xml("<a><b/><c/></a>")
        for bad in (-1, 10**6):
            with pytest.raises(IndexError):
                grammar_updates.rename(doc.grammar, bad, "x")
            with pytest.raises(IndexError):
                grammar_updates.delete(doc.grammar, bad)

    def test_batch_layer_parity(self):
        from repro.updates.batch import BatchDelete, BatchRename

        with pytest.raises(IndexError):
            BatchRename(-1, "x")
        with pytest.raises(TypeError):
            BatchRename(1.5, "x")
        with pytest.raises(TypeError):
            BatchDelete(True)

    def test_select_results_satisfy_the_contract(self):
        doc = CompressedXml.from_xml("<a><b/><c><b/></c></a>")
        for index in doc.select("//b"):
            assert doc.tag_of(index) == "b"  # no raise: in-range ints


class TestQueries:
    def test_select_count_subtree(self):
        doc = CompressedXml.from_xml(
            "<log><entry><ip/></entry><entry><status/></entry></log>"
        )
        assert doc.select("/log/entry") == [1, 3]
        assert doc.select("//status") == [4]
        assert doc.count("//entry") == 2
        assert doc.subtree_xml(3) == "<entry><status/></entry>"

    def test_select_update_select(self):
        """The quickstart loop: select, batch-update the hits, re-select."""
        doc = CompressedXml.from_xml(
            "<log>" + "<entry><status/></entry>" * 5 + "</log>"
        )
        hits = doc.select("//status")
        assert len(hits) == 5
        with doc.batch() as batch:
            for index in hits:
                batch.rename(index, "code")
        assert doc.select("//status") == []
        assert doc.select("//code") == hits
        assert doc.label_index.wholesale_invalidations == 0

    def test_malformed_path_raises_value_error(self):
        from repro.query.parser import QuerySyntaxError

        doc = CompressedXml.from_xml("<a/>")
        with pytest.raises(QuerySyntaxError):
            doc.select("entry")
        with pytest.raises(ValueError):
            doc.count("//a[0]")

    def test_label_index_created_lazily(self):
        doc = CompressedXml.from_xml("<a><b/></a>")
        assert doc._label_index is None
        doc.rename(1, "c")  # write path never builds it
        assert doc._label_index is None
        assert doc.count("//c") == 1
        assert doc._label_index is not None


class TestUpdates:
    def test_rename_by_element_index(self):
        doc = CompressedXml.from_xml("<a><b/><b/><b/></a>")
        doc.rename(2, "mid")
        assert doc.to_xml() == "<a><b/><mid/><b/></a>"

    def test_insert_before_element(self):
        doc = CompressedXml.from_xml("<a><b/><c/></a>")
        doc.insert(2, XmlNode("x", [XmlNode("y")]))
        assert doc.to_xml() == "<a><b/><x><y/></x><c/></a>"

    def test_insert_multiple_siblings(self):
        doc = CompressedXml.from_xml("<a><b/></a>")
        doc.insert(1, [XmlNode("p"), XmlNode("q")])
        assert doc.to_xml() == "<a><p/><q/><b/></a>"

    def test_append_child_to_leaf(self):
        doc = CompressedXml.from_xml("<a><b/><c/></a>")
        doc.append_child(1, XmlNode("inner"))
        assert doc.to_xml() == "<a><b><inner/></b><c/></a>"

    def test_append_child_after_existing_children(self):
        doc = CompressedXml.from_xml("<a><b><x/><y/></b></a>")
        doc.append_child(1, XmlNode("z"))
        assert doc.to_xml() == "<a><b><x/><y/><z/></b></a>"

    def test_append_child_to_root(self):
        doc = CompressedXml.from_xml("<a><b/></a>")
        doc.append_child(0, XmlNode("tail"))
        assert doc.to_xml() == "<a><b/><tail/></a>"

    def test_delete_element(self):
        doc = CompressedXml.from_xml("<a><b><x/></b><c/></a>")
        doc.delete(1)
        assert doc.to_xml() == "<a><c/></a>"

    def test_append_child_to_last_element(self):
        """Regression: the parent is the last element in document order,
        so its child-list terminator is the last ``⊥`` of the parent's
        subtree -- the off-the-end case of ``_end_of_children_position``."""
        doc = CompressedXml.from_xml("<a><b/><c/></a>")
        doc.append_child(2, XmlNode("tail"))
        assert doc.to_xml() == "<a><b/><c><tail/></c></a>"

    def test_append_child_to_deep_last_element(self):
        """The terminator of the deepest-last element sits immediately
        before the whole ancestor chain's closing ``⊥`` run."""
        doc = CompressedXml.from_xml("<a><b><c><d/></c></b></a>")
        doc.append_child(3, XmlNode("tail"))
        assert doc.to_xml() == "<a><b><c><d><tail/></d></c></b></a>"
        # And again on the fresh last element -- the previous tail.
        doc.append_child(4, XmlNode("deeper"))
        assert doc.to_xml() == \
            "<a><b><c><d><tail><deeper/></tail></d></c></b></a>"

    def test_append_child_to_last_element_at_scale(self):
        """Same regression against a heavily shared (compressed) grammar
        and after earlier updates dirtied the index."""
        doc = CompressedXml.from_xml(listy_xml(200))
        doc.rename(7, "touched")
        last = doc.element_count - 1
        doc.append_child(last, [XmlNode("x"), XmlNode("y")])
        plain = parse_xml(doc.to_xml())
        assert [child.tag for child in plain.children[-1].children] == ["x", "y"]
        assert doc.element_count == 203

    def test_append_child_parent_out_of_range(self):
        doc = CompressedXml.from_xml("<a><b/></a>")
        with pytest.raises(IndexError):
            doc.append_child(2, XmlNode("x"))

    def test_delete_only_child_keeps_encoding_well_formed(self):
        """Regression: deleting a parent's only child must leave the
        emptied child list as a bare ``⊥`` slot, still decodable and
        still updatable."""
        doc = CompressedXml.from_xml("<a><b><c/></b><d/></a>")
        doc.delete(2)  # c is b's only child
        assert doc.to_xml() == "<a><b/><d/></a>"
        doc.grammar.validate()
        # The emptied child list accepts a fresh append.
        doc.append_child(1, XmlNode("again"))
        assert doc.to_xml() == "<a><b><again/></b><d/></a>"

    def test_delete_only_child_of_root(self):
        doc = CompressedXml.from_xml("<a><b><x/><y/></b></a>")
        doc.delete(1)  # b is the root's only child; its subtree goes too
        assert doc.to_xml() == "<a/>"
        assert doc.element_count == 1
        doc.grammar.validate()
        doc.append_child(0, XmlNode("fresh"))
        assert doc.to_xml() == "<a><fresh/></a>"

    def test_delete_nested_only_children_at_scale(self):
        doc = CompressedXml.from_xml(
            "<log>" + "<s><only><leaf/></only></s>" * 40 + "</log>"
        )
        # Delete the <only> (single child of <s>) of the first section.
        doc.delete(2)
        plain = parse_xml(doc.to_xml())
        assert plain.children[0].children == []
        assert plain.children[1].children[0].tag == "only"
        doc.grammar.validate()

    def test_delete_root_rejected(self):
        doc = CompressedXml.from_xml("<a><b/></a>")
        with pytest.raises(UpdateError):
            doc.delete(0)

    def test_delete_root_rejected_is_value_error_and_mutation_free(self):
        """The rejection must be a clear ValueError and must not have
        touched the grammar (no isolation growth, no corruption)."""
        doc = CompressedXml.from_xml(listy_xml(20))
        size_before = doc.compressed_size
        with pytest.raises(ValueError, match="root"):
            doc.delete(0)
        assert doc.compressed_size == size_before
        assert doc.updates_applied == 0
        doc.grammar.validate()
        assert doc.to_xml() == listy_xml(20)

    def test_delete_root_rejected_at_grammar_level(self):
        from repro.updates import grammar_updates

        doc = CompressedXml.from_xml("<a><b/><c/></a>")
        with pytest.raises(ValueError, match="root"):
            grammar_updates.delete(doc.grammar, 0)
        doc.grammar.validate()

    def test_update_counter(self):
        doc = CompressedXml.from_xml("<a><b/><c/></a>")
        doc.rename(1, "z")
        doc.delete(2)
        assert doc.updates_applied == 2

    def test_update_sequence_end_to_end(self):
        doc = CompressedXml.from_xml(listy_xml(30))
        doc.rename(5, "special")
        doc.insert(10, XmlNode("gap"))
        doc.delete(20)
        doc.recompress()
        plain = parse_xml(doc.to_xml())
        assert plain.children[4].tag == "special"
        assert plain.children[9].tag == "gap"
        assert len(plain.children) == 30  # +1 insert, -1 delete


class TestMaintenance:
    def test_recompress_shrinks_after_updates(self):
        doc = CompressedXml.from_xml(listy_xml(300))
        for index in (3, 50, 100, 150, 200):
            doc.rename(index, f"t{index}")
        inflated = doc.compressed_size
        doc.recompress()
        assert doc.compressed_size <= inflated

    def test_auto_recompress_policy(self):
        doc = CompressedXml.from_xml(
            listy_xml(300), auto_recompress_factor=1.5
        )
        sizes = []
        for step in range(25):
            doc.rename(7 * step % 290 + 1, f"n{step}")
            sizes.append(doc.compressed_size)
        # The automatic policy must have bounded the growth.  Each rename
        # introduces a fresh singleton label the grammar must spell out, so
        # the bound accounts for the 25 new labels too.
        baseline = CompressedXml.from_xml(listy_xml(300)).compressed_size
        assert max(sizes) <= 8 * baseline

    def test_manual_policy_grows_unboundedly_in_comparison(self):
        auto = CompressedXml.from_xml(listy_xml(300),
                                      auto_recompress_factor=1.5)
        manual = CompressedXml.from_xml(listy_xml(300))
        for step in range(25):
            position = 7 * step % 290 + 1
            auto.rename(position, f"n{step}")
            manual.rename(position, f"n{step}")
        assert auto.compressed_size <= manual.compressed_size
