"""Tests for the CompressedXml facade."""

import pytest
from hypothesis import given, settings

from repro.api import CompressedXml
from repro.trees.unranked import XmlNode, xml_equal
from repro.trees.xml_io import parse_xml
from repro.updates.operations import UpdateError

from tests.strategies import xml_documents


def listy_xml(n=50, tag="e"):
    return "<log>" + f"<{tag}/>" * n + "</log>"


class TestConstruction:
    def test_from_xml_roundtrip(self):
        doc = CompressedXml.from_xml("<a><b/><c><d/></c></a>")
        assert doc.to_xml() == "<a><b/><c><d/></c></a>"

    def test_from_document(self):
        tree = XmlNode("r", [XmlNode("x"), XmlNode("x")])
        doc = CompressedXml.from_document(tree)
        assert xml_equal(doc.to_document(), tree)

    def test_uncompressed_mode(self):
        doc = CompressedXml.from_xml(listy_xml(50), compress=False)
        assert len(doc.grammar) == 1
        assert doc.to_xml() == listy_xml(50)

    def test_compression_happens(self):
        doc = CompressedXml.from_xml(listy_xml(200))
        assert doc.compressed_size < 60
        assert doc.compression_ratio < 0.3

    def test_file_roundtrip(self, tmp_path):
        source = tmp_path / "doc.xml"
        source.write_text(listy_xml(20))
        doc = CompressedXml.from_file(str(source))
        saved = tmp_path / "doc.grammar"
        doc.save_grammar(str(saved))
        loaded = CompressedXml.from_grammar_file(str(saved))
        assert loaded.to_xml() == listy_xml(20)

    @given(xml_documents(max_elements=25))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, tree):
        doc = CompressedXml.from_document(tree)
        assert xml_equal(doc.to_document(), tree)


class TestInspection:
    def test_counts(self):
        doc = CompressedXml.from_xml("<a><b/><c><d/></c></a>")
        assert doc.element_count == 4
        assert doc.edge_count == 3

    def test_tags_stream(self):
        doc = CompressedXml.from_xml("<a><b/><c><d/></c></a>")
        assert list(doc.tags()) == ["a", "b", "c", "d"]

    def test_tag_of(self):
        doc = CompressedXml.from_xml("<a><b/><c><d/></c></a>")
        assert doc.tag_of(0) == "a"
        assert doc.tag_of(2) == "c"
        with pytest.raises(IndexError):
            doc.tag_of(4)

    def test_tags_window(self):
        doc = CompressedXml.from_xml(listy_xml(100))
        full = list(doc.tags())
        assert list(doc.tags(1, 4)) == full[1:4]
        assert list(doc.tags(50)) == full[50:]
        assert list(doc.tags(0, 10**9)) == full
        assert list(doc.tags(7, 7)) == []
        with pytest.raises(IndexError):
            list(doc.tags(-1, 3))

    def test_tags_window_after_updates(self):
        doc = CompressedXml.from_xml(listy_xml(40))
        doc.rename(5, "special")
        doc.insert(10, XmlNode("gap"))
        full = list(doc.tags())
        assert list(doc.tags(4, 12)) == full[4:12]
        assert full[5] == "special"

    def test_repr(self):
        doc = CompressedXml.from_xml("<a><b/></a>")
        assert "2 elements" in repr(doc)


class TestUpdates:
    def test_rename_by_element_index(self):
        doc = CompressedXml.from_xml("<a><b/><b/><b/></a>")
        doc.rename(2, "mid")
        assert doc.to_xml() == "<a><b/><mid/><b/></a>"

    def test_insert_before_element(self):
        doc = CompressedXml.from_xml("<a><b/><c/></a>")
        doc.insert(2, XmlNode("x", [XmlNode("y")]))
        assert doc.to_xml() == "<a><b/><x><y/></x><c/></a>"

    def test_insert_multiple_siblings(self):
        doc = CompressedXml.from_xml("<a><b/></a>")
        doc.insert(1, [XmlNode("p"), XmlNode("q")])
        assert doc.to_xml() == "<a><p/><q/><b/></a>"

    def test_append_child_to_leaf(self):
        doc = CompressedXml.from_xml("<a><b/><c/></a>")
        doc.append_child(1, XmlNode("inner"))
        assert doc.to_xml() == "<a><b><inner/></b><c/></a>"

    def test_append_child_after_existing_children(self):
        doc = CompressedXml.from_xml("<a><b><x/><y/></b></a>")
        doc.append_child(1, XmlNode("z"))
        assert doc.to_xml() == "<a><b><x/><y/><z/></b></a>"

    def test_append_child_to_root(self):
        doc = CompressedXml.from_xml("<a><b/></a>")
        doc.append_child(0, XmlNode("tail"))
        assert doc.to_xml() == "<a><b/><tail/></a>"

    def test_delete_element(self):
        doc = CompressedXml.from_xml("<a><b><x/></b><c/></a>")
        doc.delete(1)
        assert doc.to_xml() == "<a><c/></a>"

    def test_delete_root_rejected(self):
        doc = CompressedXml.from_xml("<a><b/></a>")
        with pytest.raises(UpdateError):
            doc.delete(0)

    def test_update_counter(self):
        doc = CompressedXml.from_xml("<a><b/><c/></a>")
        doc.rename(1, "z")
        doc.delete(2)
        assert doc.updates_applied == 2

    def test_update_sequence_end_to_end(self):
        doc = CompressedXml.from_xml(listy_xml(30))
        doc.rename(5, "special")
        doc.insert(10, XmlNode("gap"))
        doc.delete(20)
        doc.recompress()
        plain = parse_xml(doc.to_xml())
        assert plain.children[4].tag == "special"
        assert plain.children[9].tag == "gap"
        assert len(plain.children) == 30  # +1 insert, -1 delete


class TestMaintenance:
    def test_recompress_shrinks_after_updates(self):
        doc = CompressedXml.from_xml(listy_xml(300))
        for index in (3, 50, 100, 150, 200):
            doc.rename(index, f"t{index}")
        inflated = doc.compressed_size
        doc.recompress()
        assert doc.compressed_size <= inflated

    def test_auto_recompress_policy(self):
        doc = CompressedXml.from_xml(
            listy_xml(300), auto_recompress_factor=1.5
        )
        sizes = []
        for step in range(25):
            doc.rename(7 * step % 290 + 1, f"n{step}")
            sizes.append(doc.compressed_size)
        # The automatic policy must have bounded the growth.  Each rename
        # introduces a fresh singleton label the grammar must spell out, so
        # the bound accounts for the 25 new labels too.
        baseline = CompressedXml.from_xml(listy_xml(300)).compressed_size
        assert max(sizes) <= 8 * baseline

    def test_manual_policy_grows_unboundedly_in_comparison(self):
        auto = CompressedXml.from_xml(listy_xml(300),
                                      auto_recompress_factor=1.5)
        manual = CompressedXml.from_xml(listy_xml(300))
        for step in range(25):
            position = 7 * step % 290 + 1
            auto.rename(position, f"n{step}")
            manual.rename(position, f"n{step}")
        assert auto.compressed_size <= manual.compressed_size
