"""Flat-kernel equivalence and lifecycle tests (repro.grammar.kernel).

The correctness bar is the object-graph traversal path: for random
documents, random update/batch scripts, and random shard widths, every
query the kernel serves (``select`` / ``count`` / ``tags`` windows /
axes / ``subtree_xml``) must return exactly what ``use_kernel=False``
returns -- before and after every single operation.  On top of parity,
the lifecycle counters are pinned: rule edits evict individual packs,
recompression never triggers a wholesale kernel invalidation, and
snapshot reloads start with zero packed rules (packing is lazy).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CompressedXml
from repro.grammar.kernel import (
    DEFAULT_MIN_DOC_ELEMENTS,
    SymbolTable,
    global_symbol_table,
    kernel_enabled_by_env,
)
from repro.storage.durable import DurableXml
from repro.trees.symbols import Alphabet
from repro.trees.unranked import XmlNode
from repro.updates.batch import (
    BatchAppend,
    BatchDelete,
    BatchInsert,
    BatchRename,
)

from tests.grammar.test_index import replay_script
from tests.strategies import (
    batch_scripts,
    label_paths,
    shard_widths,
    update_scripts,
    xml_documents,
)

WEBLOG = (
    "<log>"
    + "".join(
        f"<entry><ip/><status/><agent{i % 3}/></entry>" for i in range(40)
    )
    + "</log>"
)

#: Paths whose result sets the parity properties compare on every step.
PARITY_PATHS = ("//a", "//b", "/a/b", "//c/d", "//*[2]", "//zz")


def kernelized(tree, **kwargs):
    """A document whose kernel is forced active regardless of size.

    Hypothesis documents are tiny (well under the automatic
    ``DEFAULT_MIN_DOC_ELEMENTS`` fallback), so the gate is lowered to
    zero -- the production default is covered by the gating tests.
    """
    kwargs.setdefault("use_kernel", True)
    doc = CompressedXml.from_document(tree, **kwargs)
    kernel = doc.index.kernel
    assert kernel is not None
    kernel.min_doc_elements = 0
    return doc


def observe(doc, paths=PARITY_PATHS):
    """Everything the kernel can influence, as one comparable value."""
    n = doc.element_count
    return {
        "xml": doc.to_xml(),
        "tags": list(doc.tags()),
        "select": {path: doc.select(path) for path in paths},
        "count": {path: doc.count(path) for path in paths},
        "parents": [doc.parent_of(i) for i in range(n)],
        "depths": [doc.depth_of(i) for i in range(n)],
        "children": [list(doc.children(i)) for i in range(n)],
        "subtrees": [doc.subtree_xml(i) for i in range(n)],
        "windows": [list(doc.tags(i, min(i + 3, n))) for i in range(n)],
    }


class TestSymbolTable:
    def test_interning_is_identity_keyed_and_stable(self):
        alphabet = Alphabet()
        a = alphabet.terminal("a", 2)
        b = alphabet.terminal("b", 2)
        table = SymbolTable()
        ia, ib = table.id_of(a), table.id_of(b)
        assert ia != ib
        assert table.id_of(a) == ia  # stable on re-intern
        assert table.symbol_of(ia) is a
        assert table.symbol_of(ib) is b
        assert len(table) == 2

    def test_distinct_objects_get_distinct_ids(self):
        # Identity interning: equal-looking symbols from different
        # alphabets are different ids (packs never compare across docs).
        a1 = Alphabet().terminal("a", 2)
        a2 = Alphabet().terminal("a", 2)
        table = SymbolTable()
        assert table.id_of(a1) != table.id_of(a2)

    def test_global_table_is_a_singleton(self):
        assert global_symbol_table() is global_symbol_table()


class TestKernelGating:
    def test_small_documents_fall_back_automatically(self):
        doc = CompressedXml.from_xml("<a><b/><c/></a>", use_kernel=True)
        assert doc.element_count < DEFAULT_MIN_DOC_ELEMENTS
        assert doc.index.kernel is not None
        assert doc.index.active_kernel() is None
        assert doc.select("//b") == [1]  # still answers, object path

    def test_large_documents_engage_the_kernel(self):
        doc = CompressedXml.from_xml(WEBLOG, use_kernel=True)
        assert doc.element_count >= DEFAULT_MIN_DOC_ELEMENTS
        kernel = doc.index.active_kernel()
        assert kernel is not None
        doc.select("//status")
        assert kernel.rules_packed > 0
        assert kernel.builds > 0

    def test_use_kernel_false_disables_entirely(self):
        doc = CompressedXml.from_xml(WEBLOG, use_kernel=False)
        assert doc.index.kernel is None
        assert doc.index.kernel_info() == {"enabled": False}
        assert doc.count("//entry") == 40

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_USE_KERNEL", "0")
        assert not kernel_enabled_by_env()
        doc = CompressedXml.from_xml(WEBLOG)
        assert doc.index.kernel is None
        assert doc.count("//entry") == 40
        monkeypatch.setenv("REPRO_USE_KERNEL", "1")
        assert kernel_enabled_by_env()

    def test_explicit_use_kernel_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_USE_KERNEL", "0")
        doc = CompressedXml.from_xml(WEBLOG, use_kernel=True)
        assert doc.index.kernel is not None

    def test_reader_pins_suspend_the_live_kernel(self):
        doc = CompressedXml.from_xml(WEBLOG, use_kernel=True)
        assert doc.index.active_kernel() is not None
        with doc.snapshot() as view:
            # The live document must fall back (rhs() reads under pins
            # do copy-on-write preservation), the frozen view must not.
            assert doc.index.active_kernel() is None
            assert view._index.active_kernel() is not None
            before = view.select("//status")
            doc.rename(2, "renamed")
            assert view.select("//status") == before
        assert doc.index.active_kernel() is not None

    def test_kernel_info_shape(self):
        doc = CompressedXml.from_xml(WEBLOG, use_kernel=True)
        doc.select("//ip")
        info = doc.index.kernel_info()
        assert info["enabled"] is True
        for key in ("rules_packed", "bytes_packed", "builds", "evictions",
                    "hits", "misses", "wholesale_invalidations",
                    "min_doc_elements"):
            assert key in info, key
        assert info["bytes_packed"] > 0
        assert info["wholesale_invalidations"] == 0


class TestKernelParity:
    @given(xml_documents(max_elements=25),
           st.one_of(st.none(), shard_widths()))
    @settings(max_examples=40, deadline=None)
    def test_static_parity(self, tree, width):
        fast = kernelized(tree, shard_width=width)
        slow = CompressedXml.from_document(tree, shard_width=width,
                                           use_kernel=False)
        assert observe(fast) == observe(slow)
        assert fast.index.kernel.rules_packed > 0

    @given(xml_documents(max_elements=25), label_paths())
    @settings(max_examples=40, deadline=None)
    def test_random_path_parity(self, tree, path):
        fast = kernelized(tree)
        slow = CompressedXml.from_document(tree, use_kernel=False)
        assert fast.select(path) == slow.select(path), path
        assert fast.count(path) == slow.count(path), path

    @given(
        xml_documents(max_elements=20),
        update_scripts(max_ops=6),
        st.one_of(st.none(), shard_widths()),
    )
    @settings(max_examples=25, deadline=None)
    def test_parity_after_update_scripts(self, tree, script, width):
        """Pack invalidation is exercised: both documents are warmed,
        then queried after every operation of the same script."""
        fast = kernelized(tree, shard_width=width)
        slow = CompressedXml.from_document(tree, shard_width=width,
                                           use_kernel=False)
        assert observe(fast) == observe(slow)
        for (_, __) in zip(replay_script(fast, script),
                           replay_script(slow, script)):
            for path in PARITY_PATHS[:3]:
                assert fast.select(path) == slow.select(path), path
            assert list(fast.tags()) == list(slow.tags())
        assert observe(fast) == observe(slow)
        # Eviction must be surgical: a script of point updates (and even
        # recompressions) never justifies dropping every pack at once.
        assert fast.index.kernel.wholesale_invalidations == 0
        assert fast.index.wholesale_invalidations == 0

    @given(xml_documents(max_elements=15), batch_scripts(max_ops=8))
    @settings(max_examples=20, deadline=None)
    def test_parity_after_batches(self, tree, script):
        fast = kernelized(tree)
        slow = CompressedXml.from_document(tree, use_kernel=False)
        fast.count("//a")
        slow.count("//a")
        for kind, fraction, tag, wide in script:
            count = fast.element_count
            content = [XmlNode(tag), XmlNode(tag)] if wide else XmlNode(tag)
            if kind == "rename":
                op = BatchRename(int(fraction * count), tag)
            elif kind == "insert" and count > 1:
                op = BatchInsert(1 + int(fraction * (count - 1)), content)
            elif kind == "append":
                op = BatchAppend(int(fraction * count), content)
            elif kind == "delete" and count > 1:
                op = BatchDelete(1 + int(fraction * (count - 1)))
            else:
                continue
            fast.apply_batch([op])
            slow.apply_batch([op])
            for path in PARITY_PATHS[:3]:
                assert fast.select(path) == slow.select(path), path
        assert observe(fast) == observe(slow)
        assert fast.index.kernel.wholesale_invalidations == 0


class TestEvictionAccounting:
    def warmed(self):
        doc = CompressedXml.from_xml(WEBLOG, use_kernel=True)
        doc.select("//status")
        doc.select("//ip")
        list(doc.tags())
        return doc, doc.index.kernel

    def test_point_update_evicts_only_the_touched_spine(self):
        doc, kernel = self.warmed()
        packed_before = kernel.rules_packed
        assert packed_before > 1
        doc.rename(2, "ipaddr")
        # Some packs die (the spine above the edit), but not all of them.
        assert kernel.evictions > 0
        assert kernel.rules_packed > 0
        assert kernel.wholesale_invalidations == 0
        assert doc.select("//ipaddr") == [2]

    def test_recompression_is_not_wholesale(self):
        doc, kernel = self.warmed()
        doc.rename(2, "needle")
        doc.append_child(0, XmlNode("trailer", [XmlNode("checksum")]))
        evictions_before = kernel.evictions
        doc.recompress()
        doc.select("//needle")
        list(doc.tags())
        assert kernel.evictions > evictions_before
        assert kernel.wholesale_invalidations == 0
        assert doc.index.wholesale_invalidations == 0

    def test_interleaved_traffic_never_goes_wholesale(self):
        doc, kernel = self.warmed()
        other = CompressedXml.from_xml(WEBLOG, use_kernel=False)
        for step in range(12):
            for target in (doc, other):
                target.rename(2 + step * 3, f"t{step % 4}")
                target.append_child(0, XmlNode(f"t{step % 4}"))
                if step % 5 == 4:
                    target.recompress()
            assert doc.select("//t1") == other.select("//t1")
            assert list(doc.tags()) == list(other.tags())
        assert kernel.evictions > 0
        assert kernel.wholesale_invalidations == 0
        assert doc.to_xml() == other.to_xml()

    def test_bytes_packed_tracks_pack_population(self):
        doc, kernel = self.warmed()
        assert kernel.bytes_packed > 0
        assert kernel.to_dict()["bytes_packed"] == kernel.bytes_packed
        doc.index.invalidate_all()
        assert kernel.rules_packed == 0
        assert kernel.bytes_packed == 0
        assert kernel.wholesale_invalidations == 1


class TestSnapshotReloadIsLazy:
    def test_snapshot_reload_starts_unpacked(self, tmp_path):
        doc = CompressedXml.from_xml(WEBLOG, use_kernel=True)
        doc.rename(2, "ipaddr")
        expected = doc.select("//status")
        doc.select("//status")  # warm: packs exist in the writer
        assert doc.index.kernel.rules_packed > 0

        path = str(tmp_path / "doc.snapshot")
        doc.save_snapshot(path)
        doc2 = CompressedXml.from_snapshot_file(path, use_kernel=True)

        # Mirrors the rules_censused == 0 guarantee: restoring segments
        # must not eagerly pack a single rule, nor count a wholesale
        # invalidation for the import.
        kernel = doc2.index.kernel
        assert kernel is not None
        assert kernel.rules_packed == 0
        assert kernel.wholesale_invalidations == 0

        assert doc2.select("//status") == expected
        assert kernel.rules_packed > 0
        assert kernel.wholesale_invalidations == 0

    @pytest.mark.skipif(
        not kernel_enabled_by_env(),
        reason="DurableXml.open follows REPRO_USE_KERNEL, disabled here",
    )
    def test_durable_open_starts_unpacked(self, tmp_path):
        store = str(tmp_path / "store")
        doc = CompressedXml.from_xml(WEBLOG)
        with DurableXml.create(store, doc) as durable:
            durable.document.rename(2, "ipaddr")
            expected = durable.document.select("//status")

        with DurableXml.open(store) as durable:
            kernel = durable.document.index.kernel
            assert kernel is not None
            assert kernel.rules_packed == 0
            assert durable.document.select("//status") == expected
            assert kernel.rules_packed > 0
            assert kernel.wholesale_invalidations == 0

    @given(xml_documents(max_elements=20))
    @settings(max_examples=15, deadline=None)
    def test_snapshot_round_trip_parity(self, tmp_path_factory, tree):
        doc = kernelized(tree)
        if doc.element_count > 2:
            doc.rename(1, "renamed")
        before = observe(doc)
        tmp = tmp_path_factory.mktemp("ksnap")
        path = str(tmp / "doc.snapshot")
        doc.save_snapshot(path)
        doc2 = CompressedXml.from_snapshot_file(path, use_kernel=True)
        kernel = doc2.index.kernel
        assert kernel.rules_packed == 0
        kernel.min_doc_elements = 0
        assert observe(doc2) == before
        assert kernel.wholesale_invalidations == 0


class TestKernelMetricsSurface:
    def test_metrics_source_and_counters(self):
        doc = CompressedXml.from_xml(WEBLOG, use_kernel=True)
        doc.select("//status")
        metrics = doc.metrics()
        source = metrics["sources"]["repro_kernel"]
        assert source["enabled"] == 1
        assert source["rules_packed"] > 0
        assert source["bytes_packed"] > 0
        prom = doc.metrics_registry.render_prometheus()
        assert "repro_kernel_builds_total" in prom
        assert "repro_kernel_evictions_total" in prom
        assert "repro_kernel_rules_packed" in prom

    def test_disabled_kernel_still_reports(self):
        doc = CompressedXml.from_xml(WEBLOG, use_kernel=False)
        doc.select("//status")
        metrics = doc.metrics()
        assert metrics["sources"]["repro_kernel"]["enabled"] == 0
        prom = doc.metrics_registry.render_prometheus()
        # Declared-at-wiring counters appear in exposition either way.
        assert "repro_kernel_builds_total" in prom
