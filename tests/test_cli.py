"""Tests for the repro-xml command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text("<log>" + "<entry><ip/><ts/></entry>" * 40 + "</log>")
    return path


class TestCompressDecompress:
    def test_compress_writes_grammar(self, xml_file, capsys):
        assert main(["compress", str(xml_file)]) == 0
        out = capsys.readouterr().out
        assert "grammar of" in out
        assert (xml_file.parent / "doc.xml.grammar").exists()

    def test_roundtrip_through_files(self, xml_file, tmp_path, capsys):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        out_path = tmp_path / "restored.xml"
        main(["decompress", str(grammar_path), "-o", str(out_path)])
        assert out_path.read_text() == xml_file.read_text()

    def test_decompress_to_stdout(self, xml_file, tmp_path, capsys):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        capsys.readouterr()
        main(["decompress", str(grammar_path)])
        assert "<entry>" in capsys.readouterr().out


class TestStats:
    def test_stats_on_xml(self, xml_file, capsys):
        assert main(["stats", str(xml_file)]) == 0
        out = capsys.readouterr().out
        assert "elements:    121" in out
        assert "ratio:" in out

    def test_stats_on_grammar(self, xml_file, tmp_path, capsys):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        capsys.readouterr()
        main(["stats", str(grammar_path)])
        assert "elements:    121" in capsys.readouterr().out


class TestUpdate:
    def test_rename_roundtrip(self, xml_file, tmp_path, capsys):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        main(["update", str(grammar_path), "rename", "1", "first"])
        out_path = tmp_path / "out.xml"
        main(["decompress", str(grammar_path), "-o", str(out_path)])
        assert "<first>" in out_path.read_text()

    def test_insert_fragment(self, xml_file, tmp_path):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        main(["update", str(grammar_path), "insert", "1",
              "<marker><why/></marker>"])
        out_path = tmp_path / "out.xml"
        main(["decompress", str(grammar_path), "-o", str(out_path)])
        assert "<marker><why/></marker><entry>" in out_path.read_text()

    def test_delete(self, xml_file, tmp_path):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        main(["update", str(grammar_path), "delete", "1"])
        out_path = tmp_path / "out.xml"
        main(["decompress", str(grammar_path), "-o", str(out_path)])
        assert out_path.read_text().count("<entry>") == 39


class TestQueryCommand:
    def test_query_lists_index_and_tag(self, xml_file, tmp_path, capsys):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        capsys.readouterr()
        assert main(["query", str(grammar_path), "/log/entry[2]/ip"]) == 0
        captured = capsys.readouterr()
        assert captured.out == "5\tip\n"
        assert "1 match(es)" in captured.err

    def test_query_count(self, xml_file, tmp_path, capsys):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        capsys.readouterr()
        assert main(["query", str(grammar_path), "--count", "//ip"]) == 0
        assert capsys.readouterr().out == "40\n"

    def test_query_extract(self, xml_file, tmp_path, capsys):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        capsys.readouterr()
        assert main(
            ["query", str(grammar_path), "--extract", "/log/entry[1]"]
        ) == 0
        assert capsys.readouterr().out == "<entry><ip/><ts/></entry>\n"

    def test_query_limit(self, xml_file, tmp_path, capsys):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        capsys.readouterr()
        assert main(
            ["query", str(grammar_path), "//entry", "--limit", "3"]
        ) == 0
        captured = capsys.readouterr()
        assert len(captured.out.splitlines()) == 3
        assert "37 more" in captured.err
        assert "40 match(es)" in captured.err

    def test_query_works_on_raw_xml_input(self, xml_file, capsys):
        assert main(["query", str(xml_file), "--count", "//ts"]) == 0
        assert capsys.readouterr().out == "40\n"


class TestExperimentCommand:
    def test_durable_init_update_query(self, xml_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["durable", "init", store, "--xml", str(xml_file)]) == 0
        assert "generation 0" in capsys.readouterr().out

        assert main(["durable", "update", store, "rename", "1",
                     "first"]) == 0
        assert "rename committed" in capsys.readouterr().out
        assert main(["durable", "query", store, "//first"]) == 0
        out = capsys.readouterr().out
        assert "1\tfirst" in out

    def test_durable_init_requires_xml(self, tmp_path, capsys):
        assert main(["durable", "init", str(tmp_path / "s")]) == 2
        assert "--xml" in capsys.readouterr().err

    def test_durable_status_and_checkpoint(self, xml_file, tmp_path,
                                           capsys):
        store = str(tmp_path / "store")
        main(["durable", "init", store, "--xml", str(xml_file)])
        main(["durable", "update", store, "delete", "4"])
        capsys.readouterr()
        assert main(["durable", "checkpoint", store]) == 0
        assert "generation 1" in capsys.readouterr().out
        assert main(["durable", "status", store]) == 0
        out = capsys.readouterr().out
        assert "generation:  1" in out
        assert "replayed:    0 record(s)" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
