"""Tests for the repro-xml command-line interface."""

import json
import os

import pytest

from repro.cli import main


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text("<log>" + "<entry><ip/><ts/></entry>" * 40 + "</log>")
    return path


class TestCompressDecompress:
    def test_compress_writes_grammar(self, xml_file, capsys):
        assert main(["compress", str(xml_file)]) == 0
        out = capsys.readouterr().out
        assert "grammar of" in out
        assert (xml_file.parent / "doc.xml.grammar").exists()

    def test_roundtrip_through_files(self, xml_file, tmp_path, capsys):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        out_path = tmp_path / "restored.xml"
        main(["decompress", str(grammar_path), "-o", str(out_path)])
        assert out_path.read_text() == xml_file.read_text()

    def test_decompress_to_stdout(self, xml_file, tmp_path, capsys):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        capsys.readouterr()
        main(["decompress", str(grammar_path)])
        assert "<entry>" in capsys.readouterr().out


class TestStats:
    def test_stats_on_xml(self, xml_file, capsys):
        assert main(["stats", str(xml_file)]) == 0
        out = capsys.readouterr().out
        assert "elements:    121" in out
        assert "ratio:" in out

    def test_stats_on_grammar(self, xml_file, tmp_path, capsys):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        capsys.readouterr()
        main(["stats", str(grammar_path)])
        assert "elements:    121" in capsys.readouterr().out


class TestUpdate:
    def test_rename_roundtrip(self, xml_file, tmp_path, capsys):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        main(["update", str(grammar_path), "rename", "1", "first"])
        out_path = tmp_path / "out.xml"
        main(["decompress", str(grammar_path), "-o", str(out_path)])
        assert "<first>" in out_path.read_text()

    def test_insert_fragment(self, xml_file, tmp_path):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        main(["update", str(grammar_path), "insert", "1",
              "<marker><why/></marker>"])
        out_path = tmp_path / "out.xml"
        main(["decompress", str(grammar_path), "-o", str(out_path)])
        assert "<marker><why/></marker><entry>" in out_path.read_text()

    def test_delete(self, xml_file, tmp_path):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        main(["update", str(grammar_path), "delete", "1"])
        out_path = tmp_path / "out.xml"
        main(["decompress", str(grammar_path), "-o", str(out_path)])
        assert out_path.read_text().count("<entry>") == 39


class TestQueryCommand:
    def test_query_lists_index_and_tag(self, xml_file, tmp_path, capsys):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        capsys.readouterr()
        assert main(["query", str(grammar_path), "/log/entry[2]/ip"]) == 0
        captured = capsys.readouterr()
        assert captured.out == "5\tip\n"
        assert "1 match(es)" in captured.err

    def test_query_count(self, xml_file, tmp_path, capsys):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        capsys.readouterr()
        assert main(["query", str(grammar_path), "--count", "//ip"]) == 0
        assert capsys.readouterr().out == "40\n"

    def test_query_extract(self, xml_file, tmp_path, capsys):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        capsys.readouterr()
        assert main(
            ["query", str(grammar_path), "--extract", "/log/entry[1]"]
        ) == 0
        assert capsys.readouterr().out == "<entry><ip/><ts/></entry>\n"

    def test_query_limit(self, xml_file, tmp_path, capsys):
        grammar_path = tmp_path / "doc.grammar"
        main(["compress", str(xml_file), "-o", str(grammar_path)])
        capsys.readouterr()
        assert main(
            ["query", str(grammar_path), "//entry", "--limit", "3"]
        ) == 0
        captured = capsys.readouterr()
        assert len(captured.out.splitlines()) == 3
        assert "37 more" in captured.err
        assert "40 match(es)" in captured.err

    def test_query_works_on_raw_xml_input(self, xml_file, capsys):
        assert main(["query", str(xml_file), "--count", "//ts"]) == 0
        assert capsys.readouterr().out == "40\n"


class TestExperimentCommand:
    def test_durable_init_update_query(self, xml_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["durable", "init", store, "--xml", str(xml_file)]) == 0
        assert "generation 0" in capsys.readouterr().out

        assert main(["durable", "update", store, "rename", "1",
                     "first"]) == 0
        assert "rename committed" in capsys.readouterr().out
        assert main(["durable", "query", store, "//first"]) == 0
        out = capsys.readouterr().out
        assert "1\tfirst" in out

    def test_durable_init_requires_xml(self, tmp_path, capsys):
        assert main(["durable", "init", str(tmp_path / "s")]) == 2
        assert "--xml" in capsys.readouterr().err

    def test_durable_status_and_checkpoint(self, xml_file, tmp_path,
                                           capsys):
        store = str(tmp_path / "store")
        main(["durable", "init", store, "--xml", str(xml_file)])
        main(["durable", "update", store, "delete", "4"])
        capsys.readouterr()
        assert main(["durable", "checkpoint", store]) == 0
        assert "generation 1" in capsys.readouterr().out
        assert main(["durable", "status", store]) == 0
        out = capsys.readouterr().out
        assert "generation:  1" in out
        assert "replayed:    0 record(s)" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


def _flip_byte(path, offset=25):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


@pytest.fixture
def durable_store(xml_file, tmp_path, capsys):
    """A store with a compacted fallback chain: init, one committed
    update, one checkpoint."""
    store = str(tmp_path / "store")
    main(["durable", "init", store, "--xml", str(xml_file)])
    main(["durable", "update", store, "rename", "1", "first"])
    main(["durable", "checkpoint", store])
    capsys.readouterr()
    return store


class TestDurableScrubCli:
    def test_scrub_clean(self, durable_store, capsys):
        assert main(["durable", "scrub", durable_store]) == 0
        out = capsys.readouterr().out
        assert "scrubbed:" in out
        assert "scrub:       clean" in out

    def test_scrub_without_repair_reports_and_fails(self, durable_store,
                                                    capsys):
        _flip_byte(os.path.join(durable_store, "wal.000000.compact"))
        assert main(["durable", "scrub", durable_store]) == 1
        captured = capsys.readouterr()
        assert "FOUND:    [wal-corrupt]" in captured.out
        assert "re-run with --repair" in captured.err

    def test_scrub_repair_heals_the_store(self, durable_store, capsys):
        compacted = os.path.join(durable_store, "wal.000000.compact")
        _flip_byte(compacted)
        assert main(["durable", "scrub", durable_store, "--repair"]) == 0
        out = capsys.readouterr().out
        assert "repaired:    [wal-corrupt]" in out
        assert not os.path.exists(compacted)
        assert main(["durable", "scrub", durable_store]) == 0
        assert "scrub:       clean" in capsys.readouterr().out

    def test_health_emits_json(self, durable_store, capsys):
        assert main(["durable", "health", durable_store, "--json"]) == 0
        health = json.loads(capsys.readouterr().out)
        assert health["generation"] == 1
        assert health["degraded"] is False
        assert health["wal"]["segment_count"] == 1
        assert health["last_recovery"]["replayed"] == 0
        assert set(health["metrics"]) == {
            "counters", "gauges", "histograms", "sources",
        }

    def test_health_default_is_human_readable(self, durable_store,
                                              capsys):
        assert main(["durable", "health", durable_store]) == 0
        out = capsys.readouterr().out
        assert "generation:  1" in out
        assert "degraded:    no" in out
        assert "durable health --json" in out

    def test_status_shows_chain_and_degradation(self, durable_store,
                                                capsys):
        assert main(["durable", "status", durable_store]) == 0
        out = capsys.readouterr().out
        assert "wal chain:   1 segment(s), active segment 0" in out
        assert "degraded:    no" in out

    def test_status_json_schema(self, durable_store, capsys):
        assert main(["durable", "status", durable_store, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert set(status) == {
            "directory", "generation", "degraded", "element_count",
            "compressed_size", "wal", "recovery", "mvcc", "kernel",
        }
        assert status["generation"] == 1
        assert status["degraded"] is False
        assert status["recovery"]["replayed"] == 0
        assert status["wal"]["segment_count"] == 1
        assert "epoch" in status["mvcc"]
        assert "enabled" in status["kernel"]
        if status["kernel"]["enabled"]:
            # A status read alone must not force any eager packing.
            assert status["kernel"]["wholesale_invalidations"] == 0


class TestDurableMetricsCli:
    def test_metrics_table(self, durable_store, capsys):
        assert main(["durable", "metrics", durable_store]) == 0
        out = capsys.readouterr().out
        assert "repro_recovery_seconds" in out

    def test_metrics_prometheus_exposition(self, durable_store, capsys):
        assert main(
            ["durable", "metrics", durable_store, "--prometheus"]) == 0
        out = capsys.readouterr().out
        # Every declared family is present, observed or not.
        for family in (
            "repro_fsync_seconds",
            "repro_commit_seconds",
            "repro_recompress_stage_seconds",
            "repro_query_stage_seconds",
            "repro_recovery_seconds",
        ):
            assert f"# TYPE {family} histogram" in out, family
            assert f"{family}_count" in out, family
        # Cumulative buckets end at +Inf and agree with _count.
        assert 'le="+Inf"' in out


class TestDurableErrorExits:
    def test_corrupt_store_exits_nonzero_without_traceback(
            self, durable_store, capsys):
        os.remove(os.path.join(durable_store, "wal.000001"))
        for action in ("status", "query", "scrub", "health"):
            argv = ["durable", action, durable_store]
            if action == "query":
                argv.append("//first")
            assert main(argv) == 1
            err = capsys.readouterr().err
            assert err.startswith("error: ")
            assert "missing" in err

    def test_degraded_store_prints_the_runbook_hint(
            self, durable_store, capsys, monkeypatch):
        from repro.storage.durable import DurableXml, StoreDegraded

        def refuse(cls, *args, **kwargs):
            raise StoreDegraded(
                f"{durable_store}: store is read-only (degraded): boom")

        monkeypatch.setattr(DurableXml, "open", classmethod(refuse))
        assert main(["durable", "status", durable_store]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "read-only (degraded)" in err
        assert "durable scrub --repair" in err
