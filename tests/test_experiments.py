"""Smoke + shape tests for the experiment drivers (small scales).

These run every experiment at reduced scale and assert the *shape* claims
the paper makes -- the full-scale numbers live in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    figure2,
    figure3,
    figure45,
    figure6,
    static_comparison,
    table3,
)
from repro.experiments.common import ExperimentResult, format_table

SMALL = {
    "EXI-Weblog": 1200,
    "XMark": 1200,
    "EXI-Telecomp": 1200,
    "Treebank": 1200,
    "Medline": 1200,
    "NCBI": 1500,
}


class TestCommon:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text and "0.125" in text

    def test_result_add_validates_arity(self):
        result = ExperimentResult("t", ["x", "y"])
        with pytest.raises(ValueError):
            result.add(1)

    def test_column_accessor(self):
        result = ExperimentResult("t", ["x", "y"])
        result.add(1, 2)
        result.add(3, 4)
        assert result.column("y") == [2, 4]

    def test_registry_is_complete(self):
        assert set(EXPERIMENTS) == {
            "table3", "static", "figure2", "figure3", "figure45", "figure6",
        }


class TestTable3:
    def test_shape(self):
        result = table3.run(scales=SMALL, seed=1)
        assert len(result.rows) == 6
        by_name = {row[0]: row for row in result.rows}
        ratio = {name: row[4] for name, row in by_name.items()}
        # Extreme corpora compress at least an order of magnitude better.
        for extreme in ("EXI-Weblog", "EXI-Telecomp", "NCBI"):
            for moderate in ("XMark", "Treebank"):
                assert ratio[extreme] < ratio[moderate] / 4
        # Treebank is the worst case, as in the paper.
        assert ratio["Treebank"] == max(ratio.values())
        assert "c-edges" in result.render()


class TestStaticComparison:
    def test_three_compressors_agree_in_regime(self):
        result = static_comparison.run(scales=SMALL, seed=1)
        for row in result.rows:
            name, edges, dag, tree_rp, gr_tree, gr_grammar = row
            # All three RePair variants beat (or match) the DAG.
            assert tree_rp <= dag * 1.2 + 4
            assert gr_tree <= dag * 1.2 + 4
            assert gr_grammar <= dag * 1.2 + 4
            # And they land in the same ballpark as each other.
            ceiling = 2.0 * min(tree_rp, gr_tree, gr_grammar) + 16
            assert max(tree_rp, gr_tree, gr_grammar) <= ceiling


class TestFigure2:
    def test_blowup_bounded(self):
        result = figure2.run(scales=SMALL, seed=1)
        for row in result.rows:
            blow_up = row[2]
            assert 1.0 <= blow_up <= 6.0  # paper: just over 2 at full scale


class TestFigure3:
    def test_optimized_beats_non_optimized_asymptotically(self):
        result = figure3.run(ns=(4, 6, 8))
        opt = result.column("blow-up opt")
        non = result.column("blow-up non-opt")
        # Non-optimized blow-up grows with the generated string length...
        assert non[-1] > non[0] * 3
        # ... and is far above the optimized one at the largest n.
        assert non[-1] > 2.5 * opt[-1]

    def test_final_sizes_stay_logarithmic(self):
        result = figure3.run(ns=(4, 6, 8))
        finals = result.column("final")
        base_sizes = result.column("|G_n|")
        for final, base in zip(finals, base_sizes):
            assert final <= base + 2


class TestFigure45:
    def test_grammarrepair_tracks_from_scratch(self):
        result = figure45.run(
            corpora=("XMark",), n_updates=60, recompress_every=30,
            scales=SMALL, seed=1,
        )
        for row in result.rows:
            naive_ratio, gr_ratio = row[2], row[3]
            assert gr_ratio <= naive_ratio + 1e-9
            assert gr_ratio <= 1.6  # paper: ~1.008 at full scale

    def test_extreme_corpus_naive_blowup(self):
        result = figure45.run(
            corpora=("EXI-Weblog",), n_updates=60, recompress_every=30,
            scales=SMALL, seed=1,
        )
        last = result.rows[-1]
        assert last[2] > last[3]  # naive much worse than maintained


class TestFigure6:
    def test_runs_and_reports_ratios(self):
        result = figure6.run(
            corpora=("EXI-Weblog", "XMark"), n_renames=20,
            scales=SMALL, seed=1,
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert row[2] > 0  # GR/udc ratio present
            assert 0 < row[5] < 400  # space percentage sane
