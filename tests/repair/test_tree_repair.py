"""Correctness and behavior tests for the TreeRePair baseline."""

import pytest
from hypothesis import given, settings

from repro.grammar.navigation import grammar_generates_tree
from repro.grammar.properties import reference_counts
from repro.repair.tree_repair import TreeRePair, tree_repair
from repro.trees.binary import encode_binary
from repro.trees.builder import parse_term
from repro.trees.node import Node, deep_copy, node_count, tree_equal
from repro.trees.symbols import Alphabet
from repro.trees.unranked import XmlNode

from tests.strategies import ranked_trees, xml_documents


def chain_doc(n: int, tag: str = "e") -> XmlNode:
    """A root with n identical leaf children: compresses very well."""
    return XmlNode("root", [XmlNode(tag) for _ in range(n)])


class TestCorrectness:
    def test_val_preserved_on_figure1_tree(self, alphabet):
        t = "a(#,a(#,#))"
        tree = parse_term(f"f(a(#,a({t},{t})),#)", alphabet)
        grammar = tree_repair(tree, alphabet)
        grammar.validate()
        assert grammar_generates_tree(grammar, tree)

    def test_input_tree_untouched_by_default(self, alphabet):
        tree = parse_term("f(a(#,#),a(#,#))", alphabet)
        snapshot = deep_copy(tree)
        tree_repair(tree, alphabet)
        assert tree_equal(tree, snapshot)

    def test_single_node_tree(self, alphabet):
        tree = Node(alphabet.terminal("only", 0))
        grammar = tree_repair(tree, alphabet)
        assert grammar_generates_tree(grammar, tree)
        assert grammar.size == 0

    @settings(max_examples=40, deadline=None)
    @given(ranked_trees(max_nodes=80))
    def test_val_preserved_incremental(self, tree):
        alphabet = Alphabet()
        grammar = TreeRePair(strategy="incremental").compress(tree, alphabet)
        grammar.validate()
        assert grammar_generates_tree(grammar, tree)

    @settings(max_examples=40, deadline=None)
    @given(ranked_trees(max_nodes=80))
    def test_val_preserved_recount(self, tree):
        alphabet = Alphabet()
        grammar = TreeRePair(strategy="recount").compress(tree, alphabet)
        grammar.validate()
        assert grammar_generates_tree(grammar, tree)

    @settings(max_examples=25, deadline=None)
    @given(xml_documents(max_elements=40))
    def test_val_preserved_on_xml_encodings(self, doc):
        alphabet = Alphabet()
        tree = encode_binary(doc, alphabet)
        grammar = tree_repair(tree, alphabet)
        assert grammar_generates_tree(grammar, tree)

    @settings(max_examples=25, deadline=None)
    @given(ranked_trees(max_nodes=80))
    def test_incremental_matches_recount_closely(self, tree):
        """Both strategies must generate the input; sizes nearly agree.

        They may differ slightly because the incremental index re-greedies
        equal-label chains in replacement order rather than postorder.
        """
        inc = TreeRePair(strategy="incremental").compress(tree, Alphabet())
        rec = TreeRePair(strategy="recount").compress(tree, Alphabet())
        assert grammar_generates_tree(inc, tree)
        assert grammar_generates_tree(rec, tree)
        assert abs(inc.size - rec.size) <= max(3, 0.25 * rec.size)


class TestCompressionBehavior:
    def test_repetitive_list_compresses_exponentially(self, alphabet):
        tree = encode_binary(chain_doc(256), alphabet)
        grammar = tree_repair(tree, alphabet)
        assert grammar_generates_tree(grammar, tree)
        # 513 binary nodes compress to a logarithmic-size grammar.
        assert grammar.size <= 40

    def test_incompressible_tree_keeps_single_rule(self, alphabet):
        # All distinct labels: no digram occurs twice.
        labels = [alphabet.terminal(f"t{i}", 1) for i in range(6)]
        tree = Node(alphabet.terminal("z", 0))
        for symbol in labels:
            tree = Node(symbol, [tree])
        grammar = tree_repair(tree, alphabet)
        assert len(grammar) == 1
        assert grammar.size == 6

    def test_kin_limits_rule_rank(self, alphabet):
        wide = alphabet.terminal("w", 3)
        x = alphabet.terminal("x", 0)

        def wide_node():
            return Node(wide, [Node(wide, [Node(x)] * 3), Node(x), Node(x)])

        tree = Node(alphabet.terminal("r", 2), [wide_node(), wide_node()])
        for kin in (2, 3, 4, 5):
            fresh = Alphabet()
            t = deep_copy(tree)
            grammar = TreeRePair(kin=kin).compress(t, fresh)
            for head in grammar.nonterminals():
                if head is grammar.start:
                    continue
                assert head.rank <= kin
            assert grammar_generates_tree(grammar, tree)

    def test_string_repair_example(self):
        """Section I: RePair on w = ababababa yields a size-7-ish grammar."""
        alphabet = Alphabet()
        a = alphabet.terminal("a", 1)
        b = alphabet.terminal("b", 1)
        end = alphabet.terminal("$", 0)
        tree = Node(end)
        for symbol in reversed([a, b] * 4 + [a]):
            tree = Node(symbol, [tree])
        grammar = tree_repair(tree, alphabet)
        assert grammar_generates_tree(grammar, tree)
        # The paper's grammar has size 7 (plus our explicit terminator).
        assert grammar.size <= 9

    def test_pruning_removes_singly_used_rules(self, alphabet):
        tree = encode_binary(chain_doc(64), alphabet)
        pruned = TreeRePair(prune=True).compress(deep_copy(tree), alphabet)
        unpruned = TreeRePair(prune=False).compress(deep_copy(tree), alphabet)
        assert pruned.size <= unpruned.size
        counts = reference_counts(pruned)
        for head, count in counts.items():
            if head is not pruned.start:
                assert count >= 2

    def test_stats_recorded(self, alphabet):
        tree = encode_binary(chain_doc(32), alphabet)
        compressor = TreeRePair()
        grammar = compressor.compress(tree, alphabet)
        stats = compressor.stats
        assert stats.rounds == stats.rules_created
        assert stats.final_size == grammar.size
        assert stats.max_intermediate_size >= stats.final_size
        assert stats.replaced_occurrences > 0
