"""Tests for digram patterns and single-occurrence replacement."""

import pytest

from repro.repair.digram import (
    Digram,
    digram_pattern,
    replace_occurrence_in_tree,
)
from repro.trees.builder import parse_term
from repro.trees.symbols import Alphabet


class TestDigramBasics:
    def test_rank_formula(self, alphabet):
        a = alphabet.terminal("a", 2)
        b = alphabet.terminal("b", 3)
        assert Digram(a, 1, b).rank == 4  # 2 + 3 - 1

    def test_equal_label_detection(self, alphabet):
        a = alphabet.terminal("a", 2)
        b = alphabet.terminal("b", 2)
        assert Digram(a, 1, a).is_equal_label
        assert not Digram(a, 1, b).is_equal_label

    def test_appropriateness(self, alphabet):
        a = alphabet.terminal("a", 2)
        digram = Digram(a, 2, a)  # rank 3
        assert digram.is_appropriate(kin=4, occurrence_weight=2)
        assert not digram.is_appropriate(kin=2, occurrence_weight=2)
        assert not digram.is_appropriate(kin=4, occurrence_weight=1)

    def test_sort_key_is_deterministic(self, alphabet):
        a = alphabet.terminal("a", 2)
        b = alphabet.terminal("b", 2)
        keys = sorted([Digram(b, 1, a), Digram(a, 2, b), Digram(a, 1, b)],
                      key=lambda d: d.sort_key())
        assert [k.sort_key() for k in keys] == [
            ("a", 1, "b"), ("a", 2, "b"), ("b", 1, "a")
        ]


class TestPattern:
    def test_paper_pattern_shape(self, alphabet):
        """(a,1,b) with binary a and b: a(b(y1,y2),y3) (Section IV-F)."""
        a = alphabet.terminal("a", 2)
        b = alphabet.terminal("b", 2)
        pattern = digram_pattern(Digram(a, 1, b))
        assert pattern.to_sexpr() == "a(b(y1,y2),y3)"

    def test_pattern_second_child(self, alphabet):
        a = alphabet.terminal("a", 2)
        b = alphabet.terminal("b", 2)
        pattern = digram_pattern(Digram(a, 2, b))
        assert pattern.to_sexpr() == "a(y1,b(y2,y3))"

    def test_pattern_with_rank0_child(self, alphabet):
        a = alphabet.terminal("a", 2)
        bottom = alphabet.bottom()
        pattern = digram_pattern(Digram(a, 2, bottom))
        assert pattern.to_sexpr() == "a(y1,#)"

    def test_pattern_with_mixed_ranks(self, alphabet):
        f = alphabet.terminal("f", 3)
        g = alphabet.terminal("g", 1)
        pattern = digram_pattern(Digram(f, 2, g))
        assert pattern.to_sexpr() == "f(y1,g(y2),y3)"

    def test_invalid_index_rejected(self, alphabet):
        a = alphabet.terminal("a", 2)
        b = alphabet.terminal("b", 0)
        with pytest.raises(ValueError):
            digram_pattern(Digram(a, 3, b))


class TestReplacement:
    def test_child_subtrees_are_rewired_in_order(self, alphabet):
        """Replacing (a,1,b) in a(b(s1,s2),s3) yields X(s1,s2,s3)."""
        tree = parse_term("a(b(s1,s2),s3)", alphabet)
        X = alphabet.nonterminal("X", 3)
        child = tree.child(1)
        x = replace_occurrence_in_tree(tree, 1, child, X)
        assert x.to_sexpr() == "X(s1,s2,s3)"

    def test_replacement_splices_into_outer_tree(self, alphabet):
        tree = parse_term("f(a(b(c,d),e),z)", alphabet)
        X = alphabet.nonterminal("X", 3)
        a_node = tree.child(1)
        replace_occurrence_in_tree(a_node, 1, a_node.child(1), X)
        assert tree.to_sexpr() == "f(X(c,d,e),z)"

    def test_replacement_is_inverse_of_inlining(self, alphabet):
        """Replacing then inlining X restores the original tree."""
        from repro.grammar.slcf import Grammar
        from repro.grammar.derivation import inline_at
        from repro.trees.node import tree_equal, deep_copy

        tree = parse_term("f(a(b(c,d),e),z)", alphabet)
        original = deep_copy(tree)
        a = alphabet.get("a")
        b = alphabet.get("b")
        digram = Digram(a, 1, b)
        X = alphabet.nonterminal("X", 3)
        a_node = tree.child(1)
        x = replace_occurrence_in_tree(a_node, 1, a_node.child(1), X)

        grammar = Grammar.from_tree(tree, alphabet)
        grammar.set_rule(X, digram_pattern(digram))
        inline_at(grammar, x)
        assert tree_equal(grammar.rhs(grammar.start), original)

    def test_stale_occurrence_detected(self, alphabet):
        tree = parse_term("a(b(c,d),e)", alphabet)
        X = alphabet.nonterminal("X", 3)
        stranger = parse_term("b(x,x2)", alphabet)
        with pytest.raises(ValueError, match="stale"):
            replace_occurrence_in_tree(tree, 1, stranger, X)
