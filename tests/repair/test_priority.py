"""Tests for the lazy digram priority queue."""

from repro.repair.digram import Digram
from repro.repair.priority import DigramPriorityQueue
from repro.trees.symbols import Alphabet


def _digrams(alphabet):
    a = alphabet.terminal("a", 2)
    b = alphabet.terminal("b", 2)
    c = alphabet.terminal("c", 2)
    return Digram(a, 1, b), Digram(b, 1, c), Digram(a, 2, c)


class TestQueue:
    def test_pop_returns_heaviest(self, alphabet):
        d1, d2, d3 = _digrams(alphabet)
        q = DigramPriorityQueue()
        q.update(d1, 3)
        q.update(d2, 7)
        q.update(d3, 5)
        assert q.pop_best() == (d2, 7)

    def test_stale_entries_are_skipped(self, alphabet):
        d1, d2, _ = _digrams(alphabet)
        q = DigramPriorityQueue()
        q.update(d1, 10)
        q.update(d2, 5)
        q.update(d1, 2)  # d1 decreased; the old entry is stale
        assert q.pop_best() == (d2, 5)

    def test_zero_weight_removes(self, alphabet):
        d1, _, _ = _digrams(alphabet)
        q = DigramPriorityQueue()
        q.update(d1, 4)
        q.update(d1, 0)
        assert q.pop_best() is None

    def test_accept_filter(self, alphabet):
        d1, d2, _ = _digrams(alphabet)
        q = DigramPriorityQueue()
        q.update(d1, 10)
        q.update(d2, 5)
        result = q.pop_best(lambda d, w: d is d2)
        assert result == (d2, 5)

    def test_rejected_then_updated_digram_is_reachable(self, alphabet):
        d1, _, _ = _digrams(alphabet)
        q = DigramPriorityQueue()
        q.update(d1, 1)
        assert q.pop_best(lambda d, w: w > 1) is None
        q.update(d1, 3)  # grew later: a fresh heap entry revives it
        assert q.pop_best(lambda d, w: w > 1) == (d1, 3)

    def test_weight_lookup(self, alphabet):
        d1, _, _ = _digrams(alphabet)
        q = DigramPriorityQueue()
        assert q.weight(d1) == 0
        q.update(d1, 6)
        assert q.weight(d1) == 6

    def test_deterministic_tie_break_by_sort_key(self, alphabet):
        d1, d2, d3 = _digrams(alphabet)
        q = DigramPriorityQueue()
        for d in (d3, d2, d1):
            q.update(d, 4)
        first, _ = q.pop_best()
        assert first == d1  # ("a",1,"b") sorts first

    def test_empty_pop(self):
        assert DigramPriorityQueue().pop_best() is None


class TestPeek:
    def test_peek_does_not_consume(self, alphabet):
        d1, d2, _ = _digrams(alphabet)
        q = DigramPriorityQueue()
        q.update(d1, 3)
        q.update(d2, 7)
        assert q.peek_best() == (d2, 7)
        assert q.peek_best() == (d2, 7)  # still there
        assert q.pop_best() == (d2, 7)

    def test_peek_keeps_rejected_entries_live(self, alphabet):
        d1, d2, _ = _digrams(alphabet)
        q = DigramPriorityQueue()
        q.update(d1, 10)
        q.update(d2, 5)
        # Reject the heavier digram; it must survive for later peeks with
        # a different predicate (varying skip sets).
        assert q.peek_best(lambda d, w: d is d2) == (d2, 5)
        assert q.peek_best() == (d1, 10)

    def test_peek_discards_stale_entries(self, alphabet):
        d1, d2, _ = _digrams(alphabet)
        q = DigramPriorityQueue()
        q.update(d1, 10)
        q.update(d1, 2)
        q.update(d2, 5)
        assert q.peek_best() == (d2, 5)
        assert len(q) == 2

    def test_peek_empty(self):
        assert DigramPriorityQueue().peek_best() is None
