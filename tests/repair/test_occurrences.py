"""Tests for digram occurrence counting on trees.

The key correctness property: for non-equal-label digrams the stored count
equals the exact number of edges; for equal-label digrams it equals the
maximum non-overlapping matching, which on chains of ``k`` nodes is
``floor(k/2)``.
"""

from collections import defaultdict

import pytest
from hypothesis import given

from repro.repair.digram import Digram
from repro.repair.occurrences import TreeOccurrenceIndex, count_tree_digrams
from repro.trees.builder import parse_term
from repro.trees.node import Node
from repro.trees.symbols import Alphabet
from repro.trees.traversal import preorder

from tests.strategies import ranked_trees


def brute_force_counts(root):
    """Independent census: exact edge counts / chain matchings."""
    exact = defaultdict(int)
    for node in preorder(root):
        for i, child in enumerate(node.children, start=1):
            if node.symbol is not child.symbol:
                exact[Digram(node.symbol, i, child.symbol)] += 1
    # Equal-label digrams: decompose into maximal chains along child i.
    for node in preorder(root):
        for i, child in enumerate(node.children, start=1):
            if node.symbol is not child.symbol:
                continue
            digram = Digram(node.symbol, i, node.symbol)
            # Only start counting at a chain head.
            parent = node.parent
            is_head = not (
                parent is not None
                and parent.symbol is node.symbol
                and len(parent.children) >= i
                and parent.children[i - 1] is node
            )
            if not is_head:
                continue
            length = 1
            current = node
            while (
                current.symbol is node.symbol
                and len(current.children) >= i
                and current.children[i - 1].symbol is node.symbol
            ):
                current = current.children[i - 1]
                length += 1
            exact[digram] += length // 2
    return dict(exact)


class TestInitialCount:
    def test_simple_tree(self, alphabet):
        tree = parse_term("f(a(#,#),a(#,#))", alphabet)
        counts = {d: len(o) for d, o in count_tree_digrams(tree).items()}
        a = alphabet.get("a")
        f = alphabet.get("f")
        bottom = alphabet.bottom()
        assert counts[Digram(f, 1, a)] == 1
        assert counts[Digram(f, 2, a)] == 1
        assert counts[Digram(a, 1, bottom)] == 2
        assert counts[Digram(a, 2, bottom)] == 2

    def test_equal_label_chain_of_three(self, alphabet):
        tree = parse_term("g(g(g(x)))", alphabet)
        g = alphabet.get("g")
        counts = {d: len(o) for d, o in count_tree_digrams(tree).items()}
        assert counts[Digram(g, 1, g)] == 1  # floor(3/2)

    def test_equal_label_chain_of_four(self, alphabet):
        tree = parse_term("g(g(g(g(x))))", alphabet)
        g = alphabet.get("g")
        counts = {d: len(o) for d, o in count_tree_digrams(tree).items()}
        assert counts[Digram(g, 1, g)] == 2

    def test_bottom_up_greedy_pairs_from_the_bottom(self, alphabet):
        """In a 3-chain the stored occurrence is the *lower* edge."""
        tree = parse_term("g(g(g(x)))", alphabet)
        g = alphabet.get("g")
        index = TreeOccurrenceIndex.build(tree)
        [occ] = index.occurrences(Digram(g, 1, g))
        assert occ.parent is tree.child(1)  # middle node as parent

    def test_figure1_digram_counts(self, alphabet):
        """The (a,2,a) digram of Figure 1 has 3 non-overlapping occs."""
        t = "a(#,a(#,#))"
        tree = parse_term(f"f(a(#,a({t},{t})),#)", alphabet)
        a = alphabet.get("a")
        counts = {d: len(o) for d, o in count_tree_digrams(tree).items()}
        # Edges (a,2,a): the outer a to its second child, and one inside
        # each t-subtree: 3 total edges, pairwise... the outer one shares
        # no node with the inner ones, so all 3 are stored? The outer a's
        # second child is the upper a of t -- they form a chain of length 3
        # per branch: outer-a -> a(top of t) -> a inside t? No: t's top a
        # has second child a(#,#).  Chain: root-a -> mid-a -> t-top-a ->
        # t-inner-a: brute force decides.
        assert counts[Digram(a, 2, a)] == brute_force_counts(tree)[Digram(a, 2, a)]

    @given(ranked_trees(max_nodes=60))
    def test_counts_match_brute_force(self, tree):
        counts = {d: len(o) for d, o in count_tree_digrams(tree).items()}
        expected = brute_force_counts(tree)
        assert counts == expected

    @given(ranked_trees(max_nodes=60))
    def test_stored_occurrences_never_overlap(self, tree):
        index = TreeOccurrenceIndex.build(tree)
        for digram, _count in index.digrams():
            seen = set()
            for occ in index.occurrences(digram):
                assert id(occ.parent) not in seen
                assert id(occ.child) not in seen
                seen.add(id(occ.parent))
                seen.add(id(occ.child))


class TestMutation:
    def test_remove_edge_updates_count(self, alphabet):
        tree = parse_term("f(a(#,#),a(#,#))", alphabet)
        index = TreeOccurrenceIndex.build(tree)
        a = alphabet.get("a")
        bottom = alphabet.bottom()
        digram = Digram(a, 1, bottom)
        assert index.count(digram) == 2
        first_a = tree.child(1)
        index.remove_edge(first_a, first_a.child(1))
        assert index.count(digram) == 1

    def test_remove_missing_edge_is_noop(self, alphabet):
        tree = parse_term("f(a(#,#),b)", alphabet)
        index = TreeOccurrenceIndex.build(tree)
        index.remove_edge(tree, tree.child(2))  # (f,2,b) exists
        index.remove_edge(tree, tree.child(2))  # now absent: no error

    def test_removing_claimed_occurrence_releases_nodes(self, alphabet):
        tree = parse_term("g(g(x))", alphabet)
        g = alphabet.get("g")
        index = TreeOccurrenceIndex.build(tree)
        digram = Digram(g, 1, g)
        assert index.count(digram) == 1
        index.remove_edge(tree, tree.child(1))
        assert index.count(digram) == 0
        # The nodes are free again: re-adding stores the occurrence.
        assert index.add(tree, 1, tree.child(1))

    def test_add_suppresses_overlap(self, alphabet):
        tree = parse_term("g(g(g(x)))", alphabet)
        index = TreeOccurrenceIndex.build(tree)
        # The lower edge is stored; adding the upper edge must be refused.
        assert not index.add(tree, 1, tree.child(1))

    def test_drop_digram(self, alphabet):
        tree = parse_term("f(a(#,#),a(#,#))", alphabet)
        index = TreeOccurrenceIndex.build(tree)
        a = alphabet.get("a")
        digram = Digram(a, 1, alphabet.bottom())
        index.drop_digram(digram)
        assert index.count(digram) == 0
        assert index.occurrences(digram) == []


class TestBest:
    def test_best_returns_most_frequent(self, alphabet):
        tree = parse_term("f(a(#,#),f(a(#,#),a(#,#)))", alphabet)
        index = TreeOccurrenceIndex.build(tree)
        digram, weight = index.best(kin=4)
        a = alphabet.get("a")
        bottom = alphabet.bottom()
        assert weight == 3
        assert digram in (Digram(a, 1, bottom), Digram(a, 2, bottom))

    def test_best_respects_kin(self, alphabet):
        wide = alphabet.terminal("w", 5)
        x = alphabet.terminal("x", 0)
        leafy = [Node(x) for _ in range(5)]
        tree = Node(
            alphabet.terminal("r", 2),
            [
                Node(wide, [Node(x) for _ in range(5)]),
                Node(wide, [Node(x) for _ in range(5)]),
            ],
        )
        index = TreeOccurrenceIndex.build(tree)
        best = index.best(kin=2)
        # Digrams (w,i,x) have rank 4 > 2; (r,i,w) rank 6 > 2: nothing fits
        # except... none have two occurrences of rank <= 2.
        assert best is None

    def test_best_requires_two_occurrences(self, alphabet):
        tree = parse_term("f(a,b)", alphabet)
        index = TreeOccurrenceIndex.build(tree)
        assert index.best(kin=4) is None

    def test_deterministic_tie_break(self, alphabet):
        tree = parse_term("f(a(#,#),a(#,#))", alphabet)
        picks = set()
        for _ in range(5):
            fresh = Alphabet()
            t = parse_term("f(a(#,#),a(#,#))", fresh)
            index = TreeOccurrenceIndex.build(t)
            digram, _ = index.best(kin=4)
            picks.add((digram.parent.name, digram.index, digram.child.name))
        assert len(picks) == 1
