"""Tests for the pruning phase (Section IV-D)."""

import pytest
from hypothesis import given, settings

from repro.grammar.navigation import generates_same_tree
from repro.grammar.properties import reference_counts
from repro.grammar.serialize import parse_grammar
from repro.repair.pruning import prune_grammar, saving

from tests.strategies import slcf_grammars


class TestSaving:
    def test_saving_formula(self):
        g = parse_grammar("start S\nS -> f(A,A)\nA -> g(g(a))\n")
        A = g.alphabet.get("A")
        # size(tA) = 2 edges, rank 0, |ref| = 2: sav = 2*2 - 2 = 2.
        assert saving(g, A, 2) == 2

    def test_saving_negative_for_single_reference(self):
        g = parse_grammar("start S\nS -> f(A,b)\nA -> g(g(a))\n")
        A = g.alphabet.get("A")
        # sav = 1*(2-0) - 2 = 0; with rank 1 it would be negative.
        assert saving(g, A, 1) == 0

    def test_saving_accounts_for_rank(self):
        g = parse_grammar("start S\nS -> f(A(a),A(b))\nA/1 -> g(g(y1))\n")
        A = g.alphabet.get("A")
        # size 2 edges... tA = g(g(y1)): 3 nodes, 2 edges, rank 1:
        # sav = 2*(2-1) - 2 = 0.
        assert saving(g, A, 2) == 0


class TestPrune:
    def test_dead_rules_are_dropped(self):
        g = parse_grammar(
            "start S\nS -> f(a,b)\nD -> g(E)\nE -> g(a)\n"
        )
        removed = prune_grammar(g)
        assert removed == 2
        assert len(g) == 1
        g.validate()

    def test_single_reference_rules_inlined(self):
        g = parse_grammar("start S\nS -> f(A,b)\nA -> g(g(g(a)))\n")
        reference = g.copy()
        prune_grammar(g)
        assert len(g) == 1
        assert generates_same_tree(g, reference)

    def test_protected_rules_survive(self):
        g = parse_grammar("start S\nS -> f(A,b)\nA -> g(g(g(a)))\n")
        A = g.alphabet.get("A")
        prune_grammar(g, protected=[A])
        assert g.has_rule(A)

    def test_unproductive_small_rule_inlined(self):
        # B -> g(y1) has size 1: sav = 2*(1-1) - 1 = -1 < 0.
        g = parse_grammar("start S\nS -> f(B(a),B(b))\nB/1 -> g(y1)\n")
        reference = g.copy()
        prune_grammar(g)
        assert len(g) == 1
        assert generates_same_tree(g, reference)

    def test_productive_rule_survives(self):
        g = parse_grammar(
            "start S\nS -> f(A,A)\nA -> g(g(g(g(a))))\n"
        )
        A = g.alphabet.get("A")
        prune_grammar(g)
        assert g.has_rule(A)

    def test_cascading_prune_through_chain(self):
        # A used once inside B which is used once: both vanish.
        g = parse_grammar(
            "start S\nS -> f(B,c)\nB -> g(A)\nA -> g(g(a))\n"
        )
        reference = g.copy()
        prune_grammar(g)
        assert len(g) == 1
        assert generates_same_tree(g, reference)

    def test_size_never_grows_when_pruning_singles(self):
        g = parse_grammar("start S\nS -> f(A,b)\nA -> g(g(g(a)))\n")
        before = g.size
        prune_grammar(g)
        assert g.size <= before + 1  # inlining a 1-ref rule is size-neutral

    @settings(max_examples=40)
    @given(slcf_grammars())
    def test_prune_preserves_generated_tree(self, grammar):
        reference = grammar.copy()
        prune_grammar(grammar)
        grammar.validate()
        assert generates_same_tree(grammar, reference)

    @settings(max_examples=40)
    @given(slcf_grammars())
    def test_after_prune_no_single_reference_rules(self, grammar):
        prune_grammar(grammar)
        counts = reference_counts(grammar)
        for head, count in counts.items():
            if head is not grammar.start:
                assert count >= 2
