"""Threaded MVCC stress: concurrent writers, pinned readers, zero torn reads.

Writers rename disjoint element ranges in atomic batches; each batch
stamps every element it owns with the same round tag.  A *torn read* --
a reader observing some elements of one writer at round ``r`` and others
at round ``r'`` -- is therefore detectable from tags alone.  Readers pin
snapshots mid-flight and assert (a) no snapshot ever shows a
half-applied batch and (b) a snapshot is frozen: reading it twice gives
identical bytes even while writers keep committing.

Runs twice: against the in-memory document (write-lock + epoch pins)
and through the durable layer's group-commit path (spine gate, shard
locks, commit lock, pipelined fsync).
"""

import threading

import pytest

from repro.api import CompressedXml
from repro.storage.durable import DurableXml
from repro.updates.batch import BatchRename

N_WRITERS = 4
ELEMS_PER_WRITER = 6
ROUNDS = 25
N_READERS = 3
JOIN_TIMEOUT = 60.0  # generous; CI runs this under faulthandler

XML = (
    "<log>"
    + "<w0/>" * ELEMS_PER_WRITER
    + "<w1/>" * ELEMS_PER_WRITER
    + "<w2/>" * ELEMS_PER_WRITER
    + "<w3/>" * ELEMS_PER_WRITER
    + "</log>"
)


def writer_range(writer):
    """The contiguous element-index range writer ``writer`` owns.
    Renames never shift indexes, so the ranges are stable for the
    whole run."""
    start = 1 + writer * ELEMS_PER_WRITER
    return range(start, start + ELEMS_PER_WRITER)


def stamp_ops(writer, round_number):
    return [BatchRename(index, f"w{writer}r{round_number}")
            for index in writer_range(writer)]


def assert_untorn(tags):
    """Every writer's range must carry a single round stamp."""
    for writer in range(N_WRITERS):
        stamps = {tags[index] for index in writer_range(writer)}
        # "w<writer>/" initial tags count as round -1; they may only
        # coexist with themselves.
        assert len(stamps) == 1, (
            f"torn read: writer {writer}'s range shows {sorted(stamps)}"
        )
        stamp = stamps.pop()
        assert stamp.startswith(f"w{writer}"), stamp


def run_stress(target, snapshot_source):
    """Drive N writers and M readers against ``target`` (anything with
    ``apply_batch``); readers pin via ``snapshot_source.snapshot()``."""
    errors = []
    stop = threading.Event()

    def write(writer):
        try:
            for round_number in range(ROUNDS):
                target.apply_batch(stamp_ops(writer, round_number))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(f"writer {writer}: {exc!r}")
            stop.set()

    def read(reader):
        try:
            while not stop.is_set():
                with snapshot_source.snapshot() as view:
                    tags = {index: view.tag_of(index)
                            for index in range(1, view.element_count)}
                    assert_untorn(tags)
                    first = view.to_xml()
                    assert view.to_xml() == first, "snapshot not frozen"
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(f"reader {reader}: {exc!r}")
            stop.set()

    writers = [threading.Thread(target=write, args=(w,), daemon=True)
               for w in range(N_WRITERS)]
    readers = [threading.Thread(target=read, args=(r,), daemon=True)
               for r in range(N_READERS)]
    for thread in readers + writers:
        thread.start()
    for thread in writers:
        thread.join(JOIN_TIMEOUT)
        assert not thread.is_alive(), "writer deadlocked (join timed out)"
    stop.set()
    for thread in readers:
        thread.join(JOIN_TIMEOUT)
        assert not thread.is_alive(), "reader deadlocked (join timed out)"
    assert errors == [], errors


def final_tags(doc):
    return {index: doc.tag_of(index)
            for index in range(1, doc.element_count)}


class TestInMemoryStress:
    def test_writers_and_pinned_readers_no_torn_reads(self):
        doc = CompressedXml.from_xml(XML, shard_width=8)
        run_stress(doc, doc)
        tags = final_tags(doc)
        assert_untorn(tags)
        last = f"r{ROUNDS - 1}"
        for writer in range(N_WRITERS):
            assert tags[writer_range(writer)[0]].endswith(last)
        assert doc.mvcc_info()["pinned_snapshots"] == 0
        doc.grammar.validate()

    def test_stress_with_auto_recompress_in_the_loop(self):
        """Same invariant while the recompression policy fires
        mid-stream (exclusive spine barrier vs pinned readers)."""
        doc = CompressedXml.from_xml(
            XML, shard_width=8, auto_recompress_factor=1.05
        )
        run_stress(doc, doc)
        assert_untorn(final_tags(doc))
        assert doc.mvcc_info()["pinned_snapshots"] == 0


class TestDurableGroupCommitStress:
    @pytest.fixture
    def store(self, tmp_path):
        with DurableXml.from_xml(
            str(tmp_path / "store"), XML,
            shard_width=8, group_commit=True,
        ) as st:
            yield st

    def test_group_commit_writers_no_torn_reads(self, store):
        run_stress(store, store)
        assert_untorn(final_tags(store))
        assert store.health()["mvcc"]["group_commit"] is True
        assert store.mvcc_info()["pinned_snapshots"] == 0

    def test_reopen_after_stress_replays_to_same_document(
        self, store, tmp_path
    ):
        run_stress(store, store)
        expected = store.to_xml()
        store.close()
        with DurableXml.open(str(tmp_path / "store")) as reopened:
            assert reopened.to_xml() == expected
            assert_untorn(final_tags(reopened))

    def test_checkpoint_races_the_writers(self, store):
        """A concurrent (non-blocking) checkpoint mid-stress must not
        block or tear anything; the store lands on a fresh generation
        with the writers' final state."""
        done = threading.Event()
        checkpoint_errors = []

        def checkpointer():
            while not done.is_set():
                try:
                    store.checkpoint()
                except Exception as exc:  # pragma: no cover
                    checkpoint_errors.append(repr(exc))
                    return
                done.wait(0.01)

        thread = threading.Thread(target=checkpointer, daemon=True)
        thread.start()
        try:
            run_stress(store, store)
        finally:
            done.set()
            thread.join(JOIN_TIMEOUT)
        assert not thread.is_alive(), "checkpointer deadlocked"
        assert checkpoint_errors == []
        assert_untorn(final_tags(store))
        assert store.generation > 0
