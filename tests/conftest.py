"""Shared fixtures: canonical example trees and grammars from the paper."""

from __future__ import annotations

import pytest

from repro.grammar.slcf import Grammar
from repro.trees.builder import parse_term
from repro.trees.symbols import Alphabet


@pytest.fixture
def alphabet() -> Alphabet:
    return Alphabet()


@pytest.fixture
def figure1_grammar() -> Grammar:
    """The Section II example grammar.

    ``S -> f(A(B,B), ⊥)``, ``B -> A(⊥,⊥)``, ``A -> a(⊥, a(y1,y2))``;
    ``valG(S)`` is the binary tree of Figure 1.
    """
    alphabet = Alphabet()
    S = alphabet.nonterminal("S", 0)
    A = alphabet.nonterminal("A", 2)
    B = alphabet.nonterminal("B", 0)
    nts = frozenset({"S", "A", "B"})
    grammar = Grammar(alphabet, S)
    grammar.set_rule(S, parse_term("f(A(B,B),#)", alphabet, nts))
    grammar.set_rule(B, parse_term("A(#,#)", alphabet, nts))
    grammar.set_rule(A, parse_term("a(#,a(y1,y2))", alphabet, nts))
    grammar.validate()
    return grammar


@pytest.fixture
def grammar1_fragment() -> Grammar:
    """Section IV-A's "Grammar 1" fragment, completed with a start rule.

    ``C -> A(B(⊥),⊥)``, ``A -> a(y1, a(B(⊥), a(⊥,y2)))``, ``B -> b(y1,⊥)``.
    The paper leaves it a fragment; tests wrap it under ``S -> g(C)`` so it
    is a complete grammar.
    """
    alphabet = Alphabet()
    S = alphabet.nonterminal("S", 0)
    C = alphabet.nonterminal("C", 0)
    A = alphabet.nonterminal("A", 2)
    B = alphabet.nonterminal("B", 1)
    nts = frozenset({"S", "C", "A", "B"})
    grammar = Grammar(alphabet, S)
    grammar.set_rule(S, parse_term("g(C)", alphabet, nts))
    grammar.set_rule(C, parse_term("A(B(#),#)", alphabet, nts))
    grammar.set_rule(A, parse_term("a(y1,a(B(#),a(#,y2)))", alphabet, nts))
    grammar.set_rule(B, parse_term("b(y1,#)", alphabet, nts))
    grammar.validate()
    return grammar


def make_string_grammar(rules: dict, start: str = "S") -> Grammar:
    """Build a *string* grammar as a monadic tree grammar (see
    :mod:`repro.grammar.strings`; kept here as a short alias for tests)."""
    from repro.grammar.strings import string_grammar

    return string_grammar(rules, start=start)


def string_of(grammar: Grammar) -> str:
    """Decode a monadic (string) grammar back to its string."""
    from repro.grammar.strings import grammar_string

    return grammar_string(grammar)
