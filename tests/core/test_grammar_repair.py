"""End-to-end tests for GrammarRePair (Algorithm 1)."""

import pytest
from hypothesis import given, settings

from repro.core.grammar_repair import GrammarRePair, grammar_repair
from repro.grammar.navigation import (
    generates_same_tree,
    grammar_generates_tree,
)
from repro.grammar.serialize import parse_grammar
from repro.grammar.slcf import Grammar
from repro.repair.tree_repair import tree_repair
from repro.trees.binary import encode_binary
from repro.trees.symbols import Alphabet
from repro.trees.unranked import XmlNode

from tests.conftest import make_string_grammar, string_of
from tests.strategies import slcf_grammars, xml_documents


def updated_g8():
    """Section III-B: G8 after inserting b in front and a at the end.

    ``{A -> bBBa, B -> CC, C -> DD, D -> ab}`` represents ``b(ab)^8 a``.
    """
    return make_string_grammar(
        {"S": "bBBa", "B": "CC", "C": "DD", "D": "ab"}, start="S"
    )


class TestSectionIIIExample:
    def test_most_frequent_digram_is_ba(self):
        """On b(ab)^8a the digram 'ba' (9 occurrences) beats 'ab' (8)."""
        from repro.core.retrieve import retrieve_occurrences

        g = updated_g8()
        table = retrieve_occurrences(g)
        b = g.alphabet.get("b")
        a = g.alphabet.get("a")
        from repro.repair.digram import Digram

        assert table.weight(Digram(b, 1, a)) == 9
        assert table.weight(Digram(a, 1, b)) == 8
        best, weight = table.best(kin=4)
        assert (best.parent.name, best.child.name) == ("b", "a")
        assert weight == 9

    def test_recompression_rebuilds_around_ba(self):
        g = updated_g8()
        original = string_of(g)
        assert original == "b" + "ab" * 8 + "a"
        compressed = grammar_repair(g)
        compressed.validate()
        assert string_of(compressed) == original
        # The paper's final grammar {A->XWW, W->ZZ, Z->XX, X->ba} has size
        # 9; our monadic encoding carries one extra terminator edge.
        assert compressed.size <= 12
        # A rule X -> b(a(y1)) (the string digram "ba") must exist.
        bodies = {rhs.to_sexpr() for rhs in compressed.rules.values()}
        assert "b(a(y1))" in bodies

    def test_doubling_structure_is_rediscovered(self):
        """Gn compresses back to logarithmic size after the update."""
        rules = {"S": "a" + "A6A6" + "b"}
        rules["A0"] = "ba"
        for i in range(1, 7):
            rules[f"A{i}"] = f"A{i-1}A{i-1}"
        g = make_string_grammar(rules)
        original = string_of(g)
        compressed = grammar_repair(g)
        assert string_of(compressed) == original
        assert compressed.size <= g.size + 4


class TestCorrectness:
    def test_figure1_grammar_roundtrip(self, figure1_grammar):
        reference = figure1_grammar.copy()
        result = grammar_repair(figure1_grammar)
        result.validate()
        assert generates_same_tree(result, reference)
        assert result.size <= reference.size

    def test_input_grammar_untouched_by_default(self, figure1_grammar):
        before = figure1_grammar.size
        grammar_repair(figure1_grammar)
        assert figure1_grammar.size == before

    def test_in_place_compression(self, figure1_grammar):
        reference = figure1_grammar.copy()
        result = GrammarRePair().compress(figure1_grammar, in_place=True)
        assert result is figure1_grammar
        assert generates_same_tree(result, reference)

    @settings(max_examples=30, deadline=None)
    @given(slcf_grammars())
    def test_random_grammars_optimized(self, grammar):
        reference = grammar.copy()
        result = grammar_repair(grammar, optimized=True)
        result.validate()
        assert generates_same_tree(result, reference)

    @settings(max_examples=30, deadline=None)
    @given(slcf_grammars())
    def test_random_grammars_simple(self, grammar):
        reference = grammar.copy()
        result = grammar_repair(grammar, optimized=False)
        result.validate()
        assert generates_same_tree(result, reference)

    @settings(max_examples=20, deadline=None)
    @given(xml_documents(max_elements=30))
    def test_applied_to_trees(self, doc):
        alphabet = Alphabet()
        tree = encode_binary(doc, alphabet)
        compressor = GrammarRePair()
        grammar = compressor.compress_tree(tree, alphabet)
        grammar.validate()
        assert grammar_generates_tree(grammar, tree)

    def test_idempotent_on_compressed_grammar(self):
        doc = XmlNode("r", [XmlNode("e") for _ in range(64)])
        alphabet = Alphabet()
        tree = encode_binary(doc, alphabet)
        once = GrammarRePair().compress_tree(tree, alphabet)
        twice = grammar_repair(once)
        assert generates_same_tree(once, twice)
        assert twice.size <= once.size + 1


class TestAgainstTreeRePair:
    """Section V-B: GrammarRePair-on-trees compresses like TreeRePair."""

    def _compare(self, doc):
        a1, a2 = Alphabet(), Alphabet()
        t1 = encode_binary(doc, a1)
        t2 = encode_binary(doc, a2)
        via_tree = tree_repair(t1, a1)
        via_grammar = GrammarRePair().compress_tree(t2, a2)
        return via_tree, via_grammar

    def test_on_repetitive_list(self):
        doc = XmlNode("r", [XmlNode("e") for _ in range(128)])
        via_tree, via_grammar = self._compare(doc)
        assert via_grammar.size <= via_tree.size * 1.5 + 4
        assert via_tree.size <= via_grammar.size * 1.5 + 4

    def test_on_record_collection(self):
        records = [
            XmlNode("rec", [XmlNode("id"), XmlNode("name"), XmlNode("addr")])
            for _ in range(40)
        ]
        doc = XmlNode("db", records)
        via_tree, via_grammar = self._compare(doc)
        assert via_grammar.size <= via_tree.size * 1.5 + 4

    @settings(max_examples=15, deadline=None)
    @given(xml_documents(max_elements=35))
    def test_sizes_comparable_property(self, doc):
        via_tree, via_grammar = self._compare(doc)
        # Same greedy family, different counting order: sizes must be in
        # the same ballpark on arbitrary documents.
        assert via_grammar.size <= via_tree.size * 1.6 + 6
        assert via_tree.size <= via_grammar.size * 1.6 + 6


class TestStats:
    def test_size_trace_and_blowup(self):
        g = updated_g8()
        compressor = GrammarRePair()
        result = compressor.compress(g)
        stats = compressor.stats
        assert stats.initial_size == g.size
        assert stats.final_size == result.size
        assert stats.max_intermediate_size >= stats.final_size
        assert stats.blow_up >= 1.0
        assert len(stats.size_trace) == stats.rounds + 2

    def test_rounds_match_rules_created(self):
        compressor = GrammarRePair()
        compressor.compress(updated_g8())
        assert compressor.stats.rounds == compressor.stats.rules_created
