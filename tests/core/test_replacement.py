"""Tests for digram replacement on grammars (Algorithms 5-8).

The centerpiece is the paper's concluding example (Section IV-F): replacing
``(a,1,b)`` on Grammar 1 with the optimized algorithm must produce

    C -> X(#,#,D(#))        (D is the exported fragment rule)
    D -> X(#,#,a(#,y1))
    X -> a(b(y1,y2),y3)

with rule ``B`` becoming superfluous, while the non-optimized algorithm
reaches an equivalent grammar by full inlining.
"""

import pytest
from hypothesis import given, settings

from repro.core.replace_optimized import (
    OptimizedReplacer,
    replace_all_occurrences_optimized,
)
from repro.core.replace_simple import replace_all_occurrences_simple
from repro.core.retrieve import retrieve_occurrences
from repro.grammar.derivation import expand
from repro.grammar.navigation import generates_same_tree, grammar_generates_tree
from repro.grammar.properties import collect_garbage
from repro.grammar.serialize import parse_grammar
from repro.grammar.slcf import Grammar
from repro.repair.digram import Digram, digram_pattern
from repro.trees.symbols import Alphabet

from tests.strategies import slcf_grammars


def paper_grammar1():
    """Grammar 1 with the paper's side conditions materialized.

    Section IV-F assumes A, B and C are called from elsewhere; wrapping
    them under a root r3 realizes that without adding occurrences of
    (a,1,b).
    """
    return parse_grammar(
        "start S\n"
        "S -> r3(C,A(#,#),A(#,#))\n"
        "C -> A(B(#),#)\n"
        "A/2 -> a(y1,a(B(#),a(#,y2)))\n"
        "B/1 -> b(y1,#)\n"
    )


def alpha_of(grammar):
    a = grammar.alphabet.get("a")
    b = grammar.alphabet.get("b")
    return Digram(a, 1, b)


def run_replacement(grammar, optimized):
    digram = alpha_of(grammar)
    table = retrieve_occurrences(grammar)
    occurrences = table.occurrences(digram)
    X = grammar.alphabet.nonterminal("X", 3)
    grammar.set_rule(X, digram_pattern(digram))
    if optimized:
        replaced = replace_all_occurrences_optimized(
            grammar, digram, X, occurrences, opaque={X}
        )
    else:
        replaced = replace_all_occurrences_simple(
            grammar, digram, X, occurrences
        )
    collect_garbage(grammar)
    return replaced


class TestConcludingExample:
    def test_optimized_reproduces_paper_rules(self):
        grammar = paper_grammar1()
        reference = grammar.copy()
        replaced = run_replacement(grammar, optimized=True)
        grammar.validate()
        assert generates_same_tree(grammar, reference)
        assert replaced == 2

        rules = {
            head.name: rhs.to_sexpr() for head, rhs in grammar.rules.items()
        }
        # X -> a(b(y1,y2),y3): the digram pattern.
        assert rules["X"] == "a(b(y1,y2),y3)"
        # C -> X(#,#,D(#)) where D is the exported fragment.
        c_body = rules["C"]
        assert c_body.startswith("X(#,#,") and c_body.endswith("(#))")
        export_name = c_body[len("X(#,#,"):-len("(#))")]
        # D -> X(#,#,a(#,y1)) (the paper writes y2; renumbered linearly).
        assert rules[export_name] == "X(#,#,a(#,y1))"
        # B became superfluous and was collected.
        assert "B" not in rules
        # The original A keeps its replaced body for its unflagged callers.
        assert rules["A"] == "a(y1,X(#,#,a(#,y2)))"

    def test_non_optimized_is_equivalent_but_larger(self):
        optimized = paper_grammar1()
        plain = paper_grammar1()
        reference = optimized.copy()
        run_replacement(optimized, optimized=True)
        run_replacement(plain, optimized=False)
        plain.validate()
        assert generates_same_tree(plain, reference)
        assert generates_same_tree(plain, optimized)
        # On an example this small a single-use export costs about as much
        # as it saves; the asymptotic gap is exercised by the Figure 3
        # benchmark on the G_n family.
        assert optimized.size <= plain.size + 2

    def test_replacement_counts_agree(self):
        grammar = paper_grammar1()
        replaced_simple = run_replacement(paper_grammar1(), optimized=False)
        replaced_optimized = run_replacement(grammar, optimized=True)
        assert replaced_simple == replaced_optimized == 2


class TestCrossRuleIsolation:
    def test_parent_isolated_through_parameter(self):
        # The occurrence's a-parent lives in P, reached through y1.
        g = parse_grammar(
            "start S\n"
            "S -> r2(P(b(#,#)),P(b(#,#)))\n"
            "P/1 -> a(y1,#)\n"
        )
        reference = g.copy()
        replaced = run_replacement(g, optimized=True)
        g.validate()
        assert replaced == 2
        assert generates_same_tree(g, reference)

    def test_child_isolated_through_chain_of_roots(self):
        # The b-child is the root of Q, reached through P's root.
        g = parse_grammar(
            "start S\n"
            "S -> r2(a(P,#),a(P,#))\n"
            "P -> Q\n"
            "Q -> b(#,#)\n"
        )
        reference = g.copy()
        replaced = run_replacement(g, optimized=True)
        g.validate()
        assert replaced == 2
        assert generates_same_tree(g, reference)

    def test_both_sides_cross_rules(self):
        g = parse_grammar(
            "start S\n"
            "S -> r2(P(Q),P(Q))\n"
            "P/1 -> a(y1,#)\n"
            "Q -> b(#,#)\n"
        )
        reference = g.copy()
        replaced = run_replacement(g, optimized=True)
        g.validate()
        assert replaced == 2
        assert generates_same_tree(g, reference)

    def test_simple_variant_on_cross_rule_cases(self):
        for text in (
            "start S\nS -> r2(P(b(#,#)),P(b(#,#)))\nP/1 -> a(y1,#)\n",
            "start S\nS -> r2(a(P,#),a(P,#))\nP -> Q\nQ -> b(#,#)\n",
            "start S\nS -> r2(P(Q),P(Q))\nP/1 -> a(y1,#)\nQ -> b(#,#)\n",
        ):
            g = parse_grammar(text)
            reference = g.copy()
            replaced = run_replacement(g, optimized=False)
            g.validate()
            assert replaced == 2, text
            assert generates_same_tree(g, reference), text


class TestGrammar2Versions:
    """Section IV-E's Grammar 2: one rule needs four distinct versions."""

    def grammar2(self):
        return parse_grammar(
            "start S\n"
            "S -> r2(C,C)\n"
            "C -> A(#,A(A(B,#),A(B,A(#,#))))\n"
            "A/2 -> b(a(y1,c(d(a(y2,#),#),#)),#)\n"
            "B -> b(#,#)\n"
        )

    def test_all_versions_materialize(self):
        g = self.grammar2()
        digram = alpha_of(g)
        table = retrieve_occurrences(g)
        occurrences = table.occurrences(digram)
        X = g.alphabet.nonterminal("X", 3)
        g.set_rule(X, digram_pattern(digram))
        replacer = OptimizedReplacer(g, digram, X, occurrences, opaque={X})
        replacer.run()
        version_keys = {
            (head.name, frozenset(flags)) for (head, flags) in replacer.versions
        }
        A_versions = {flags for head, flags in version_keys if head == "A"}
        # The paper derives A^{y2}, A^{r,y1,y2}, A^{r,y1}, A^{r}.
        assert frozenset({"r"}) in A_versions
        assert frozenset({"r", 1}) in A_versions
        assert frozenset({"r", 1, 2}) in A_versions
        assert frozenset({2}) in A_versions

    def test_grammar2_replacement_correct(self):
        g = self.grammar2()
        reference = g.copy()
        replaced = run_replacement(g, optimized=True)
        g.validate()
        assert generates_same_tree(g, reference)
        # Six generators in C plus the intra-rule occurrence in A.
        assert replaced >= 6


class TestPropertyReplacement:
    def _first_appropriate(self, grammar):
        table = retrieve_occurrences(grammar)
        return table.best(kin=4), table

    @settings(max_examples=40, deadline=None)
    @given(slcf_grammars())
    def test_optimized_preserves_tree(self, grammar):
        best, table = self._first_appropriate(grammar)
        if best is None:
            return
        digram, _ = best
        reference = grammar.copy()
        X = grammar.alphabet.fresh_nonterminal(digram.rank)
        grammar.set_rule(X, digram_pattern(digram))
        replaced = replace_all_occurrences_optimized(
            grammar, digram, X, table.occurrences(digram), opaque={X}
        )
        collect_garbage(grammar)
        grammar.validate()
        assert replaced > 0
        assert generates_same_tree(grammar, reference)

    @settings(max_examples=40, deadline=None)
    @given(slcf_grammars())
    def test_simple_preserves_tree(self, grammar):
        best, table = self._first_appropriate(grammar)
        if best is None:
            return
        digram, _ = best
        reference = grammar.copy()
        X = grammar.alphabet.fresh_nonterminal(digram.rank)
        grammar.set_rule(X, digram_pattern(digram))
        replaced = replace_all_occurrences_simple(
            grammar, digram, X, table.occurrences(digram)
        )
        collect_garbage(grammar)
        grammar.validate()
        assert replaced > 0
        assert generates_same_tree(grammar, reference)

    @settings(max_examples=40, deadline=None)
    @given(slcf_grammars())
    def test_optimized_never_larger_than_simple(self, grammar):
        best, table = self._first_appropriate(grammar)
        if best is None:
            return
        digram, _ = best
        twin = grammar.copy()
        # Replay on both copies.
        for g, optimized in ((grammar, True), (twin, False)):
            t = retrieve_occurrences(g)
            X = g.alphabet.fresh_nonterminal(digram.rank, "X" if optimized else "Z")
            d = Digram(
                g.alphabet.get(digram.parent.name),
                digram.index,
                g.alphabet.get(digram.child.name),
            )
            g.set_rule(X, digram_pattern(d))
            occs = t.occurrences(d)
            if optimized:
                replace_all_occurrences_optimized(g, d, X, occs, opaque={X})
            else:
                replace_all_occurrences_simple(g, d, X, occs)
            collect_garbage(g)
        assert generates_same_tree(grammar, twin)


class TestLiveRefCounts:
    """The maintained per-round reference counts must equal a full
    grammar walk at all times (they replaced the O(grammar) fallback in
    OptimizedReplacer._ref_count)."""

    @staticmethod
    def _walk_count(grammar, symbol):
        count = 0
        for rhs in grammar.rules.values():
            stack = [rhs]
            while stack:
                node = stack.pop()
                if node.symbol is symbol:
                    count += 1
                stack.extend(node.children)
        return count

    def _checked_replacer(self, verified):
        walk = self._walk_count

        class CheckedReplacer(OptimizedReplacer):
            def _ref_count(self, symbol):
                result = OptimizedReplacer._ref_count(self, symbol)
                if symbol not in self.ref_counts:
                    assert result == walk(self.grammar, symbol)
                    verified.append(symbol)
                return result

            def run(self):
                result = OptimizedReplacer.run(self)
                for symbol, live in self.live_refs.items():
                    assert live == walk(self.grammar, symbol), symbol
                    verified.append(symbol)
                return result

        return CheckedReplacer

    def test_counts_exact_during_update_recompress_cycles(self, monkeypatch):
        """Exported fragment rules appear when recompressing an updated
        grammar (transparent nonterminals); their live counts must match
        a full walk at end of every round and at every live query."""
        import random

        import repro.core.replace_optimized as ro
        from repro.api import CompressedXml
        from repro.datasets.synthetic import make_corpus

        verified = []
        checked = self._checked_replacer(verified)
        monkeypatch.setattr(ro, "OptimizedReplacer", checked)

        rng = random.Random(11)
        doc = CompressedXml.from_document(
            make_corpus("Treebank", edges=800, seed=5)
        )
        for cycle in range(2):
            for step in range(25):
                n = doc.element_count
                doc.rename(rng.randrange(1, n), f"t{cycle}_{step % 5}")
            doc.recompress()
        assert verified, "no exported rules were exercised"

    def test_counts_exact_on_paper_grammar(self, monkeypatch):
        import repro.core.replace_optimized as ro

        verified = []
        checked = self._checked_replacer(verified)
        monkeypatch.setattr(ro, "OptimizedReplacer", checked)

        grammar = paper_grammar1()
        table = retrieve_occurrences(grammar)
        a = grammar.alphabet.get("a")
        b = grammar.alphabet.get("b")
        digram = Digram(a, 1, b)
        X = grammar.alphabet.fresh_nonterminal(digram.rank)
        grammar.set_rule(X, digram_pattern(digram))
        ro.replace_all_occurrences_optimized(
            grammar, digram, X, table.occurrences(digram), opaque={X}
        )
        collect_garbage(grammar)
        grammar.validate()
        assert verified, "the paper example must export rule D"
