"""Tests for TREECHILD / TREEPARENT (Algorithms 2 and 3).

The expected values for "Grammar 1" come from the paper's Tables I and II.
"""

import pytest

from repro.core.resolve import Resolver
from repro.trees.traversal import node_at_preorder


def rule_node(grammar, head_name, preorder_pos):
    """The paper's (R, n) node addressing: n is 1-based preorder."""
    head = grammar.alphabet.get(head_name)
    return node_at_preorder(grammar.rhs(head), preorder_pos - 1)


class TestTreeChild:
    def test_terminal_resolves_to_itself(self, grammar1_fragment):
        resolver = Resolver(grammar1_fragment)
        node = rule_node(grammar1_fragment, "A", 3)  # inner a
        resolved, visited = resolver.tree_child(node)
        assert resolved is node
        assert visited == []

    def test_nonterminal_descends_to_rule_root(self, grammar1_fragment):
        """TREECHILD(C,2) = (B,1) with label b (Table II)."""
        resolver = Resolver(grammar1_fragment)
        node = rule_node(grammar1_fragment, "C", 2)  # the B(#) node
        resolved, visited = resolver.tree_child(node)
        assert resolved.symbol.name == "b"
        B = grammar1_fragment.alphabet.get("B")
        assert resolved is grammar1_fragment.rhs(B)
        assert visited == [node]

    def test_descends_through_chains(self):
        from repro.grammar.serialize import parse_grammar

        g = parse_grammar(
            "start S\nS -> f(P,x)\nP -> Q\nQ -> g(x)\n"
        )
        resolver = Resolver(g)
        p_node = g.rhs(g.start).child(1)
        resolved, visited = resolver.tree_child(p_node)
        assert resolved.symbol.name == "g"
        assert [n.symbol.name for n in visited] == ["P", "Q"]

    def test_opaque_nonterminal_is_a_terminal(self, grammar1_fragment):
        g = grammar1_fragment
        B = g.alphabet.get("B")
        resolver = Resolver(g, opaque={B})
        node = rule_node(g, "C", 2)
        resolved, visited = resolver.tree_child(node)
        assert resolved is node  # stops at the opaque symbol
        assert visited == []


class TestTreeParent:
    def test_in_rule_terminal_parent(self, grammar1_fragment):
        """TREEPARENT(A,4) = ((A,3),1) (Table I)."""
        resolver = Resolver(grammar1_fragment)
        node = rule_node(grammar1_fragment, "A", 4)  # the B(#) inside tA
        parent, index, visited = resolver.tree_parent(node)
        assert parent is rule_node(grammar1_fragment, "A", 3)
        assert index == 1
        assert visited == []

    def test_parent_through_parameter(self, grammar1_fragment):
        """TREEPARENT(C,2) = ((A,1),1) (Table II)."""
        resolver = Resolver(grammar1_fragment)
        node = rule_node(grammar1_fragment, "C", 2)
        parent, index, visited = resolver.tree_parent(node)
        assert parent is rule_node(grammar1_fragment, "A", 1)
        assert index == 1
        assert [n.symbol.name for n in visited] == ["A"]

    def test_parent_of_second_subtree(self, grammar1_fragment):
        """The ⊥ at (C,4) hangs below (A,6) via y2."""
        resolver = Resolver(grammar1_fragment)
        node = rule_node(grammar1_fragment, "C", 4)
        parent, index, visited = resolver.tree_parent(node)
        assert parent is rule_node(grammar1_fragment, "A", 6)
        assert index == 2

    def test_parent_through_two_parameter_hops(self):
        from repro.grammar.serialize import parse_grammar

        g = parse_grammar(
            "start S\n"
            "S -> P(x)\n"
            "P/1 -> Q(y1)\n"
            "Q/1 -> f(a,y1)\n"
        )
        resolver = Resolver(g)
        x_node = g.rhs(g.start).child(1)
        parent, index, visited = resolver.tree_parent(x_node)
        assert parent.symbol.name == "f"
        assert index == 2
        assert [n.symbol.name for n in visited] == ["P", "Q"]

    def test_rule_root_rejected(self, grammar1_fragment):
        resolver = Resolver(grammar1_fragment)
        C = grammar1_fragment.alphabet.get("C")
        with pytest.raises(ValueError):
            resolver.tree_parent(grammar1_fragment.rhs(C))


class TestRuleOfNode:
    def test_rule_lookup(self, grammar1_fragment):
        resolver = Resolver(grammar1_fragment)
        node = rule_node(grammar1_fragment, "A", 4)
        assert resolver.rule_of_node(node).name == "A"

    def test_foreign_node_rejected(self, grammar1_fragment):
        from repro.trees.node import Node

        resolver = Resolver(grammar1_fragment)
        foreign = Node(grammar1_fragment.alphabet.bottom())
        with pytest.raises(ValueError):
            resolver.rule_of_node(foreign)
