"""Tests for RETRIEVEOCCS (Algorithm 4), including the paper's Tables I/II.

The cross-check property: usage-weighted occurrence counts on the grammar
must equal the counts TreeRePair-style counting finds on the decompressed
tree -- for non-equal-label digrams exactly; for equal-label digrams the
grammar count never exceeds the tree count (root-crossing occurrences are
deliberately forgone).
"""

import pytest
from hypothesis import given, settings

from repro.core.retrieve import retrieve_occurrences
from repro.grammar.derivation import expand
from repro.grammar.slcf import Grammar
from repro.repair.digram import Digram
from repro.repair.occurrences import count_tree_digrams
from repro.trees.symbols import Alphabet
from repro.trees.traversal import node_at_preorder

from tests.strategies import slcf_grammars


def digram_by_names(table, parent, index, child):
    for digram in table.weights:
        if (digram.parent.name, digram.index, digram.child.name) == (
            parent, index, child,
        ):
            return digram
    return None


class TestGrammar1Census:
    """Expected generators per digram, from Tables I and II."""

    def _table(self, grammar1_fragment):
        return retrieve_occurrences(grammar1_fragment)

    def test_a1b_has_two_generators(self, grammar1_fragment):
        table = self._table(grammar1_fragment)
        digram = digram_by_names(table, "a", 1, "b")
        occs = table.occurrences(digram)
        gens = {(occ.rule.name,) for occ in occs}
        assert len(occs) == 2
        assert {occ.rule.name for occ in occs} == {"A", "C"}

    def test_a2a_overlap_suppressed(self, grammar1_fragment):
        """(A,3) is stored; (A,6) overlaps it and is skipped (Table I)."""
        table = self._table(grammar1_fragment)
        digram = digram_by_names(table, "a", 2, "a")
        occs = table.occurrences(digram)
        assert len(occs) == 1
        A = grammar1_fragment.alphabet.get("A")
        expected = node_at_preorder(grammar1_fragment.rhs(A), 2)  # (A,3)
        assert occs[0].generator is expected

    def test_usage_weighting(self, grammar1_fragment):
        """(b,2,#) is generated once inside B, but usage(B) = 2."""
        table = self._table(grammar1_fragment)
        digram = digram_by_names(table, "b", 2, "#")
        assert table.weight(digram) == 2
        assert len(table.occurrences(digram)) == 1

    def test_best_is_the_papers_example_digram(self, grammar1_fragment):
        """(a,1,b) wins the weight-2 tie deterministically."""
        table = self._table(grammar1_fragment)
        digram, weight = table.best(kin=4)
        assert weight == 2
        assert (digram.parent.name, digram.index, digram.child.name) == (
            "a", 1, "b",
        )

    def test_paths_recorded_for_cross_rule_occurrence(self, grammar1_fragment):
        table = self._table(grammar1_fragment)
        digram = digram_by_names(table, "a", 1, "b")
        by_rule = {occ.rule.name: occ for occ in table.occurrences(digram)}
        cross = by_rule["C"]
        # Generator (C,2) is a nonterminal B: descent visits it; ascent
        # passes through (C,1), the A-labeled parent.
        assert [n.symbol.name for n in cross.child_path] == ["B"]
        assert [n.symbol.name for n in cross.parent_path] == ["A"]
        intra = by_rule["A"]
        assert [n.symbol.name for n in intra.child_path] == ["B"]
        assert intra.parent_path == []


class TestEqualLabelRules:
    def test_root_crossing_equal_label_skipped(self):
        from repro.grammar.serialize import parse_grammar

        # S -> g(B); B -> g(x): the edge g-g crosses B's rule root.
        g = parse_grammar("start S\nS -> g(B)\nB -> g(x)\n")
        table = retrieve_occurrences(g)
        digram = digram_by_names(table, "g", 1, "g")
        assert digram is None or table.weight(digram) == 0

    def test_parameter_crossing_equal_label_collected(self):
        from repro.grammar.serialize import parse_grammar

        # B -> g(y1) applied to g(x): the g-g edge crosses the parameter
        # boundary and *is* collected (Section IV-A).
        g = parse_grammar("start S\nS -> B(g(x))\nB/1 -> g(y1)\n")
        table = retrieve_occurrences(g)
        digram = digram_by_names(table, "g", 1, "g")
        assert digram is not None
        assert table.weight(digram) == 1

    def test_anti_sl_order_prefers_callee_side_occurrence(self):
        from repro.grammar.serialize import parse_grammar

        # Chain g-g-g: one edge inside B, one from S through y1.  B is
        # processed first, so the inner occurrence is stored and the outer
        # one (sharing the middle node) is suppressed.
        g = parse_grammar("start S\nS -> B(g(x))\nB/1 -> g(g(y1))\n")
        table = retrieve_occurrences(g)
        digram = digram_by_names(table, "g", 1, "g")
        occs = table.occurrences(digram)
        assert len(occs) == 1
        assert occs[0].rule.name == "B"


class TestTreeEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(slcf_grammars())
    def test_counts_match_decompressed_tree(self, grammar):
        table = retrieve_occurrences(grammar)
        tree = expand(grammar, budget=200_000)
        tree_counts = {
            d: len(o) for d, o in count_tree_digrams(tree).items()
        }
        for digram, weight in table.weights.items():
            key = Digram(digram.parent, digram.index, digram.child)
            if digram.is_equal_label:
                # Grammar counting may store fewer (root-crossing forgone,
                # greedy direction differs) but never more than the maximum
                # matching the tree censor finds... the tree censor itself
                # is greedy; allow equality-or-less against the edge count.
                total_edges = sum(
                    1
                    for node in _preorder(tree)
                    for idx, child in enumerate(node.children, 1)
                    if node.symbol is digram.parent
                    and idx == digram.index
                    and child.symbol is digram.child
                )
                assert weight <= total_edges
            else:
                assert weight == tree_counts.get(key, 0), digram

    @settings(max_examples=40, deadline=None)
    @given(slcf_grammars())
    def test_every_tree_digram_is_seen(self, grammar):
        """Any digram with >= 1 tree occurrence appears in the table unless
        it is an equal-label digram whose only occurrences cross roots."""
        table = retrieve_occurrences(grammar)
        tree = expand(grammar, budget=200_000)
        for digram, occs in count_tree_digrams(tree).items():
            if digram.is_equal_label:
                continue
            assert table.weight(digram) == len(occs)


def _preorder(root):
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children)
