"""Tests for the incremental grammar occurrence index (PR 2 tentpole).

Three correctness bars:

* after every replacement round, the incrementally maintained digram
  weights must agree with a from-scratch ``retrieve_occurrences`` census
  (exactly for non-equal-label digrams; equal-label greedy sets may
  legitimately differ, see the module docstring of
  ``repro.core.occurrence_index``),
* the explicit touched-rule reports of the replacers must coincide with
  what the grammar's observer channel fires,
* dirty-rule-scoped recompression must generate the same document as the
  historical full-rescan path, while performing exactly one (scoped)
  census per run and preserving the structural index's cached tables for
  untouched rules.
"""

import pytest
from hypothesis import given, settings

from repro.api import CompressedXml
from repro.core.grammar_repair import GrammarRePair, grammar_repair
from repro.core.replace_optimized import replace_all_occurrences_optimized
from repro.core.replace_simple import replace_all_occurrences_simple
from repro.core.retrieve import retrieve_occurrences
from repro.grammar.navigation import generates_same_tree
from repro.grammar.slcf import RuleTouchRecorder
from repro.repair.digram import digram_pattern
from repro.trees.binary import encode_binary
from repro.trees.symbols import Alphabet
from repro.trees.unranked import XmlNode

from tests.grammar.test_index import replay_script
from tests.strategies import slcf_grammars, update_scripts, xml_documents


def census_agreement_hook(mismatches):
    """Round hook comparing the live index against a fresh census."""

    def hook(grammar, index, opaque):
        fresh = retrieve_occurrences(grammar, opaque)
        live = index.weights()
        for digram in set(fresh.weights) | set(live):
            if digram.is_equal_label:
                # Greedy overlap suppression may pick a different (valid)
                # non-overlapping set when claims persist across rounds.
                continue
            fresh_weight = fresh.weights.get(digram, 0)
            live_weight = live.get(digram, 0)
            if fresh_weight != live_weight:
                mismatches.append((digram, fresh_weight, live_weight))

    return hook


class TestIncrementalCensusAgreement:
    @settings(max_examples=40, deadline=None)
    @given(slcf_grammars())
    def test_agrees_on_random_grammars(self, grammar):
        reference = grammar.copy()
        mismatches = []
        compressor = GrammarRePair(round_hook=census_agreement_hook(mismatches))
        result = compressor.compress(grammar)
        result.validate()
        assert mismatches == []
        assert generates_same_tree(result, reference)

    @settings(max_examples=25, deadline=None)
    @given(slcf_grammars())
    def test_agrees_with_simple_replacer(self, grammar):
        reference = grammar.copy()
        mismatches = []
        compressor = GrammarRePair(
            optimized=False, round_hook=census_agreement_hook(mismatches)
        )
        result = compressor.compress(grammar)
        result.validate()
        assert mismatches == []
        assert generates_same_tree(result, reference)

    @settings(max_examples=15, deadline=None)
    @given(xml_documents(max_elements=35))
    def test_agrees_on_tree_compression(self, doc):
        alphabet = Alphabet()
        tree = encode_binary(doc, alphabet)
        mismatches = []
        compressor = GrammarRePair(round_hook=census_agreement_hook(mismatches))
        grammar = compressor.compress_tree(tree, alphabet)
        grammar.validate()
        assert mismatches == []

    @settings(max_examples=20, deadline=None)
    @given(xml_documents(max_elements=25), update_scripts(max_ops=8))
    def test_agrees_across_update_interleavings(self, tree, script):
        """Every recompression triggered while replaying a random update
        script keeps the index in sync with a fresh census."""
        mismatches = []
        hook = census_agreement_hook(mismatches)
        doc = CompressedXml.from_document(tree)
        for kind in replay_script(doc, script):
            pass
        compressor = GrammarRePair(round_hook=hook)
        result = compressor.compress(doc.grammar)
        result.validate()
        assert mismatches == []
        assert generates_same_tree(result, doc.grammar)


class TestStructureMapConsistency:
    """The cached callee histograms, reference counts, usage, grammar
    size and topological levels must equal ground-truth recomputation
    after every round -- they replaced per-round full-grammar walks."""

    @staticmethod
    def structure_check_hook(errors):
        from repro.grammar.properties import reference_counts, usage

        def hook(grammar, index, opaque):
            true_usage = usage(grammar)
            from_structure = index.usage_from_structure()
            for head in set(true_usage) | set(from_structure):
                if true_usage.get(head, 0) != from_structure.get(head, 0):
                    errors.append(("usage", head))
            true_refs = reference_counts(grammar)
            live_refs = index.reference_counts_live()
            for head in true_refs:
                if live_refs.get(head, 0) != true_refs[head]:
                    errors.append(("refs", head))
            if index.grammar_size() != grammar.size:
                errors.append(("size", index.grammar_size(), grammar.size))

        return hook

    @settings(max_examples=30, deadline=None)
    @given(slcf_grammars())
    def test_structure_maps_on_random_grammars(self, grammar):
        errors = []
        GrammarRePair(round_hook=self.structure_check_hook(errors)).compress(
            grammar
        )
        assert errors == []

    @settings(max_examples=15, deadline=None)
    @given(xml_documents(max_elements=25), update_scripts(max_ops=8))
    def test_structure_maps_across_updates(self, tree, script):
        doc = CompressedXml.from_document(tree)
        for _ in replay_script(doc, script):
            pass
        errors = []
        GrammarRePair(round_hook=self.structure_check_hook(errors)).compress(
            doc.grammar
        )
        assert errors == []


class TestCensusInstrumentation:
    def _updated_doc_grammar(self):
        doc = CompressedXml.from_xml(
            "<log>" + "<e><a/><b/></e>" * 120 + "</log>"
        )
        for step in range(6):
            doc.rename(1 + step * 40, f"t{step % 3}")
        return doc.grammar

    def test_exactly_one_full_census_per_compress(self):
        grammar = self._updated_doc_grammar()
        compressor = GrammarRePair()
        compressor.compress(grammar)
        stats = compressor.stats
        assert stats.full_censuses == 1
        # Entry 0 is the build: every rule of the input grammar scanned.
        assert stats.census_trace[0] == len(grammar)
        assert stats.rounds > 0
        # Later rounds rescan only touched rules, never the whole grammar
        # (rule_count_trace records the rule count each census ran over;
        # digram rules are opaque and never censused, so strictly fewer).
        assert all(
            censused < total
            for censused, total in zip(stats.census_trace[1:],
                                       stats.rule_count_trace[1:])
        )

    def test_rescan_path_censuses_every_round(self):
        grammar = self._updated_doc_grammar()
        compressor = GrammarRePair(incremental=False)
        compressor.compress(grammar)
        stats = compressor.stats
        # One census per loop iteration: every successful round plus the
        # terminating empty one (plus any defensive failed rounds).
        assert stats.full_censuses >= stats.rounds + 1

    def test_dirty_seeded_census_scopes_to_frontier(self):
        doc = CompressedXml.from_xml(
            "<log>" + "<e><a/><b/></e>" * 150 + "</log>"
        )
        doc.rename(1, "first")
        doc.rename(10, "tenth")
        stats_full = GrammarRePair()
        stats_full.compress(doc.grammar)
        full_build = stats_full.stats.census_trace[0]

        compressor = GrammarRePair()
        compressor.compress(doc.grammar, dirty_rules={doc.grammar.start})
        stats = compressor.stats
        assert stats.seed_rule_count == 1
        assert stats.full_censuses == 0
        # The seeded build scans the start rule plus its frontier only.
        assert stats.census_trace[0] < full_build


class TestTouchedRuleReporting:
    def _one_round(self, grammar, optimized):
        """Run one replacement round by hand, reporting touches both ways."""
        opaque = set()
        table = retrieve_occurrences(grammar, opaque)
        best = table.best(kin=4)
        if best is None:
            return None
        digram, _weight = best
        occurrences = table.occurrences(digram)
        replacement = grammar.alphabet.fresh_nonterminal(digram.rank, "X")
        grammar.set_rule(replacement, digram_pattern(digram))
        opaque.add(replacement)
        recorder = RuleTouchRecorder()
        grammar.register_observer(recorder)
        explicit = set()
        try:
            if optimized:
                replace_all_occurrences_optimized(
                    grammar, digram, replacement, occurrences, opaque,
                    touched=explicit,
                )
            else:
                replace_all_occurrences_simple(
                    grammar, digram, replacement, occurrences,
                    touched=explicit,
                )
        finally:
            grammar.unregister_observer(recorder)
        return explicit, recorder

    @settings(max_examples=40, deadline=None)
    @given(slcf_grammars())
    def test_optimized_reports_match_observer(self, grammar):
        outcome = self._one_round(grammar, optimized=True)
        if outcome is None:
            return
        explicit, recorder = outcome
        assert recorder.changed == explicit
        assert recorder.removed == set()

    @settings(max_examples=40, deadline=None)
    @given(slcf_grammars())
    def test_simple_reports_match_observer(self, grammar):
        outcome = self._one_round(grammar, optimized=False)
        if outcome is None:
            return
        explicit, recorder = outcome
        assert recorder.changed == explicit
        assert recorder.removed == set()


class TestQueueBackedTableBest:
    @staticmethod
    def _reference_best(table, kin, skip=None):
        """The historical linear scan over the weight table."""
        best_digram, best_weight = None, 0
        for digram, weight in table.weights.items():
            if skip and digram in skip:
                continue
            if not digram.is_appropriate(kin, weight):
                continue
            if (best_digram is None or weight > best_weight
                    or (weight == best_weight
                        and digram.sort_key() < best_digram.sort_key())):
                best_digram, best_weight = digram, weight
        return None if best_digram is None else (best_digram, best_weight)

    @settings(max_examples=40, deadline=None)
    @given(slcf_grammars())
    def test_best_matches_linear_scan(self, grammar):
        table = retrieve_occurrences(grammar)
        assert table.best(kin=4) == self._reference_best(table, 4)
        # Non-destructive: asking again gives the same answer.
        assert table.best(kin=4) == self._reference_best(table, 4)
        assert table.best(kin=2) == self._reference_best(table, 2)

    @settings(max_examples=25, deadline=None)
    @given(slcf_grammars())
    def test_best_honors_skip_sets(self, grammar):
        table = retrieve_occurrences(grammar)
        skip = set()
        while True:
            expected = self._reference_best(table, 4, skip=skip)
            assert table.best(kin=4, skip=skip) == expected
            if expected is None:
                break
            skip.add(expected[0])


class TestDirtyScopedRecompression:
    @settings(max_examples=20, deadline=None)
    @given(xml_documents(max_elements=25), update_scripts(max_ops=10))
    def test_same_document_as_full_rescan(self, tree, script):
        incremental = CompressedXml.from_document(tree)
        rescan = CompressedXml.from_document(
            tree, incremental_recompress=False
        )
        for _ in replay_script(incremental, script):
            pass
        for _ in replay_script(rescan, script):
            pass
        incremental.recompress()
        rescan.recompress()
        assert incremental.element_count == rescan.element_count
        assert incremental.to_xml() == rescan.to_xml()

    @settings(max_examples=20, deadline=None)
    @given(xml_documents(max_elements=25), update_scripts(max_ops=10))
    def test_queries_stay_correct_after_scoped_recompress(self, tree, script):
        doc = CompressedXml.from_document(tree)
        for _ in replay_script(doc, script):
            pass
        doc.recompress()
        doc.grammar.validate()
        tags = list(doc.tags())
        assert len(tags) == doc.element_count
        for i in (0, doc.element_count // 2, doc.element_count - 1):
            assert doc.tag_of(i) == tags[i]

    def test_preserves_index_tables_for_untouched_rules(self):
        doc = CompressedXml.from_xml(
            "<log>" + "<e><a/><b/><c/></e>" * 200 + "</log>"
        )
        # Warm the structural index over the whole grammar.
        for i in range(0, doc.element_count, 97):
            doc.tag_of(i)
        cached_before = {
            head for head in doc.grammar.nonterminals()
            if doc.index.is_cached(head)
        }
        assert len(cached_before) > 1
        doc.rename(1, "first")  # dirties essentially just the start rule
        doc.recompress()
        assert doc.index.wholesale_invalidations == 0
        surviving = {
            head for head in cached_before
            if doc.grammar.has_rule(head) and doc.index.is_cached(head)
        }
        # The untouched bulk of the grammar kept its cached tables.
        assert surviving - {doc.grammar.start}
        # ... and the index still answers correctly from them.
        assert doc.tag_of(1) == "first"
        assert doc.element_count == 1 + 200 * 4

    def test_full_mode_still_resets_wholesale(self):
        doc = CompressedXml.from_xml(
            "<log>" + "<e/>" * 100 + "</log>",
            incremental_recompress=False,
        )
        doc.tag_of(3)
        doc.rename(1, "first")
        doc.recompress()
        assert doc.index.wholesale_invalidations == 1

    def test_uncompressed_grammar_gets_full_first_run(self):
        doc = CompressedXml.from_xml(
            "<log>" + "<e/>" * 80 + "</log>", compress=False
        )
        assert len(doc.grammar) == 1
        doc.recompress()
        # The first run on a never-compressed grammar must not be scoped
        # to (empty) dirty state: it actually compresses.
        assert doc.last_repair_stats.full_censuses == 1
        assert doc.compressed_size < 80
        doc.rename(1, "x")
        doc.recompress()
        assert doc.last_repair_stats.seed_rule_count is not None

    def test_recompress_instrumentation(self):
        doc = CompressedXml.from_xml("<log>" + "<e/>" * 60 + "</log>")
        assert doc.recompress_runs == 0
        doc.rename(1, "x")
        doc.recompress()
        assert doc.recompress_runs == 1
        assert doc.recompress_seconds > 0.0
        assert doc.last_repair_stats is not None
        assert doc.last_repair_stats.seed_rule_count is not None


class TestPruningRidesCachedStructure:
    """The recompression pruning phase must not re-walk the grammar.

    Historically ``prune_grammar`` recomputed reference counts, two
    anti-SL orders, and per-rule edge counts from scratch -- an O(|G|)
    setup per recompression even when nothing was prunable.  Incremental
    runs now hand it the occurrence index's cached structure maps; the
    historical walks remain only for the non-incremental baseline."""

    XML = "<log>" + "<e><a/><b/><c/></e>" * 60 + "</log>"

    def _forbid_walks(self, monkeypatch):
        from repro.repair import pruning

        calls = {"reference_counts": 0, "anti_sl_order": 0}

        def counting(name, fn):
            def wrapper(*args, **kwargs):
                calls[name] += 1
                return fn(*args, **kwargs)
            return wrapper

        monkeypatch.setattr(
            pruning, "reference_counts",
            counting("reference_counts", pruning.reference_counts),
        )
        monkeypatch.setattr(
            pruning, "anti_sl_order",
            counting("anti_sl_order", pruning.anti_sl_order),
        )
        return calls

    def test_incremental_prune_does_no_setup_walks(self, monkeypatch):
        doc = CompressedXml.from_xml(self.XML, compress=False)
        calls = self._forbid_walks(monkeypatch)
        compressor = GrammarRePair()
        compressor.compress(doc.grammar, in_place=True)
        assert compressor.stats.rounds > 0
        assert calls["reference_counts"] == 0, (
            "incremental pruning re-walked the grammar for reference "
            "counts instead of using the occurrence index's cached maps"
        )
        assert calls["anti_sl_order"] == 0
        doc.grammar.validate()

    def test_rescan_baseline_keeps_historical_walks(self, monkeypatch):
        doc = CompressedXml.from_xml(self.XML, compress=False)
        calls = self._forbid_walks(monkeypatch)
        GrammarRePair(incremental=False).compress(doc.grammar, in_place=True)
        assert calls["reference_counts"] >= 1
        assert calls["anti_sl_order"] >= 1

    @settings(max_examples=30, deadline=None)
    @given(slcf_grammars())
    def test_hinted_prune_equals_historical_prune(self, grammar):
        """Cached-structure pruning and the self-contained walks remove
        the same rules and generate the same document."""
        from repro.core.occurrence_index import GrammarOccurrenceIndex
        from repro.repair.pruning import prune_grammar

        reference = grammar.copy()
        hinted = grammar.copy()
        index = GrammarOccurrenceIndex(hinted, opaque=set())
        index.build()
        hints = dict(
            counts=dict(index.reference_counts_live()),
            order=index.anti_sl_order_live(),
            referencers=index.referencers_live(),
            sizes=index.rule_edges_live(),
        )
        index.detach()
        removed_hinted = prune_grammar(hinted, **hints)
        removed_plain = prune_grammar(reference)
        assert removed_hinted == removed_plain
        assert generates_same_tree(hinted, reference)
        hinted.validate()

    @settings(max_examples=20, deadline=None)
    @given(xml_documents(max_elements=25), update_scripts(max_ops=8))
    def test_census_volume_drops_versus_rescan(self, tree, script):
        """End to end, the incremental path's total per-rule scans
        (census entries) stay at or below the rescan baseline's -- the
        pruning fold must not sneak whole-grammar work back in."""
        incremental = CompressedXml.from_document(tree)
        rescan = CompressedXml.from_document(
            tree, incremental_recompress=False
        )
        for _ in replay_script(incremental, script):
            pass
        for _ in replay_script(rescan, script):
            pass
        incremental.recompress()
        rescan.recompress()
        assert incremental.to_xml() == rescan.to_xml()
        assert sum(incremental.last_repair_stats.census_trace) <= sum(
            rescan.last_repair_stats.census_trace
        )
